#include "baselines/clarans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/math.h"
#include "util/random.h"

namespace birch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cached per-point nearest / second-nearest medoid state.
struct Assignment {
  std::vector<int> nearest;        // index into the medoid array
  std::vector<double> d_nearest;   // distance to it
  std::vector<double> d_second;    // distance to the runner-up
  double cost = 0.0;

  void Recompute(const Dataset& data, const std::vector<size_t>& medoids) {
    const size_t n = data.size();
    nearest.assign(n, -1);
    d_nearest.assign(n, kInf);
    d_second.assign(n, kInf);
    cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      auto row = data.Row(i);
      for (size_t m = 0; m < medoids.size(); ++m) {
        double d = Distance(row, data.Row(medoids[m]));
        if (d < d_nearest[i]) {
          d_second[i] = d_nearest[i];
          d_nearest[i] = d;
          nearest[i] = static_cast<int>(m);
        } else if (d < d_second[i]) {
          d_second[i] = d;
        }
      }
      cost += d_nearest[i];
    }
  }
};

/// PAM swap delta: replace medoid slot `m` with candidate row `x`.
double SwapDelta(const Dataset& data, const Assignment& a, int m, size_t x) {
  double delta = 0.0;
  auto xrow = data.Row(x);
  for (size_t i = 0; i < data.size(); ++i) {
    double dxi = Distance(data.Row(i), xrow);
    if (a.nearest[i] == m) {
      // Point loses its medoid: goes to the candidate or its runner-up.
      delta += std::min(dxi, a.d_second[i]) - a.d_nearest[i];
    } else if (dxi < a.d_nearest[i]) {
      // Candidate undercuts the current nearest.
      delta += dxi - a.d_nearest[i];
    }
  }
  return delta;
}

}  // namespace

StatusOr<ClaransResult> Clarans(const Dataset& data,
                                const ClaransOptions& options) {
  const size_t n = data.size();
  if (options.k <= 0) return Status::InvalidArgument("k must be > 0");
  if (static_cast<size_t>(options.k) >= n) {
    return Status::InvalidArgument("k must be < number of points");
  }
  if (options.numlocal <= 0) {
    return Status::InvalidArgument("numlocal must be > 0");
  }
  const size_t k = static_cast<size_t>(options.k);
  int64_t maxneighbor = options.maxneighbor;
  if (maxneighbor <= 0) {
    maxneighbor = std::max<int64_t>(
        static_cast<int64_t>(0.0125 * static_cast<double>(k) *
                             static_cast<double>(n - k)),
        250);
  }

  Rng rng(options.seed);
  ClaransResult best;
  best.cost = kInf;

  for (int local = 0; local < options.numlocal; ++local) {
    // Random initial medoid set.
    std::unordered_set<size_t> chosen;
    std::vector<size_t> medoids;
    while (medoids.size() < k) {
      size_t x = rng.UniformInt(n);
      if (chosen.insert(x).second) medoids.push_back(x);
    }
    std::vector<bool> is_medoid(n, false);
    for (size_t m : medoids) is_medoid[m] = true;

    Assignment assign;
    assign.Recompute(data, medoids);

    int64_t tried = 0;
    while (tried < maxneighbor) {
      // Random neighbour: swap a random medoid slot with a random
      // non-medoid point.
      int m = static_cast<int>(rng.UniformInt(k));
      size_t x = rng.UniformInt(n);
      if (is_medoid[x]) continue;  // not a neighbour; redraw
      ++tried;
      ++best.neighbors_evaluated;
      double delta = SwapDelta(data, assign, m, x);
      if (delta < -1e-12) {
        is_medoid[medoids[static_cast<size_t>(m)]] = false;
        medoids[static_cast<size_t>(m)] = x;
        is_medoid[x] = true;
        assign.Recompute(data, medoids);
        ++best.swaps_accepted;
        tried = 0;  // restart the neighbour count from the new node
      }
    }

    if (assign.cost < best.cost) {
      best.cost = assign.cost;
      best.medoids = medoids;
      best.labels = assign.nearest;
    }
  }

  best.clusters.assign(k, CfVector(data.dim()));
  for (size_t i = 0; i < n; ++i) {
    best.clusters[static_cast<size_t>(best.labels[i])].AddPoint(
        data.Row(i), data.Weight(i));
  }
  return best;
}

}  // namespace birch
