// Standalone agglomerative hierarchical clustering over raw points —
// a thin wrapper that lifts each point to a singleton CF and reuses
// BIRCH's Phase-3 machinery. Quadratic; intended for small inputs and
// for demonstrating why BIRCH pre-condenses with a CF tree.
#ifndef BIRCH_BASELINES_HIERARCHICAL_H_
#define BIRCH_BASELINES_HIERARCHICAL_H_

#include "birch/dataset.h"
#include "birch/global_cluster.h"
#include "util/status.h"

namespace birch {

/// Agglomerates `data` into k clusters under `metric`.
StatusOr<GlobalClustering> HierarchicalCluster(
    const Dataset& data, int k,
    DistanceMetric metric = DistanceMetric::kD2);

}  // namespace birch

#endif  // BIRCH_BASELINES_HIERARCHICAL_H_
