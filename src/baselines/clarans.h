// CLARANS (Ng & Han, VLDB 1994) — the paper's head-to-head competitor
// (Sec. 6.7). A K-medoid clustering that searches the graph of medoid
// sets by randomized neighbour moves: from the current set, try up to
// `maxneighbor` random single-medoid swaps; descend on the first
// improving swap; declare a local minimum when none improves; repeat
// from `numlocal` random starts and keep the best. Defaults follow the
// published recommendation: numlocal = 2, maxneighbor =
// max(1.25% * K * (N - K), 250).
//
// Swap costs are evaluated incrementally (O(N) per neighbour) using
// cached nearest / second-nearest medoid distances, the standard PAM
// delta formula.
#ifndef BIRCH_BASELINES_CLARANS_H_
#define BIRCH_BASELINES_CLARANS_H_

#include <cstdint>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"
#include "util/status.h"

namespace birch {

struct ClaransOptions {
  int k = 0;
  int numlocal = 2;
  /// <= 0: use max(0.0125 * K * (N - K), 250).
  int maxneighbor = 0;
  uint64_t seed = 42;
};

struct ClaransResult {
  /// Row indices of the K medoids.
  std::vector<size_t> medoids;
  /// Per-point index of the nearest medoid (cluster label).
  std::vector<int> labels;
  /// Exact CFs of the K clusters.
  std::vector<CfVector> clusters;
  /// Total distance of points to their medoid (the CLARANS objective).
  double cost = 0.0;
  uint64_t neighbors_evaluated = 0;
  uint64_t swaps_accepted = 0;
};

/// Runs CLARANS on `data`. Fails on k <= 0 or k >= data.size().
StatusOr<ClaransResult> Clarans(const Dataset& data,
                                const ClaransOptions& options);

}  // namespace birch

#endif  // BIRCH_BASELINES_CLARANS_H_
