#include "baselines/clara.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/math.h"
#include "util/random.h"

namespace birch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact PAM on the rows `rows` of `data`: start from greedy BUILD
/// seeds, then repeat the single best (medoid, non-medoid) swap until
/// no swap improves. Returns medoid positions as indices into `rows`.
std::vector<size_t> PamOnSample(const Dataset& data,
                                const std::vector<size_t>& rows, size_t k,
                                int max_iterations) {
  const size_t n = rows.size();
  auto dist = [&](size_t i, size_t j) {
    return Distance(data.Row(rows[i]), data.Row(rows[j]));
  };

  // BUILD: first medoid = minimizer of total distance; then greedily
  // add the point that reduces cost most.
  std::vector<size_t> medoids;
  std::vector<double> d_near(n, kInf);
  {
    size_t best = 0;
    double best_cost = kInf;
    for (size_t c = 0; c < n; ++c) {
      double cost = 0.0;
      for (size_t i = 0; i < n; ++i) cost += dist(i, c);
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    medoids.push_back(best);
    for (size_t i = 0; i < n; ++i) d_near[i] = dist(i, best);
  }
  while (medoids.size() < k) {
    size_t best = 0;
    double best_gain = -kInf;
    for (size_t c = 0; c < n; ++c) {
      if (std::find(medoids.begin(), medoids.end(), c) != medoids.end()) {
        continue;
      }
      double gain = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = dist(i, c);
        if (d < d_near[i]) gain += d_near[i] - d;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    medoids.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      d_near[i] = std::min(d_near[i], dist(i, best));
    }
  }

  // SWAP: steepest-descent single swaps.
  auto total_cost = [&]() {
    double cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = kInf;
      for (size_t m : medoids) best = std::min(best, dist(i, m));
      cost += best;
    }
    return cost;
  };
  double cost = total_cost();
  for (int iter = 0; iter < max_iterations; ++iter) {
    double best_cost = cost;
    size_t best_slot = 0, best_cand = 0;
    bool improved = false;
    for (size_t slot = 0; slot < medoids.size(); ++slot) {
      size_t saved = medoids[slot];
      for (size_t c = 0; c < n; ++c) {
        if (std::find(medoids.begin(), medoids.end(), c) !=
            medoids.end()) {
          continue;
        }
        medoids[slot] = c;
        double trial = total_cost();
        if (trial < best_cost - 1e-12) {
          best_cost = trial;
          best_slot = slot;
          best_cand = c;
          improved = true;
        }
      }
      medoids[slot] = saved;
    }
    if (!improved) break;
    medoids[best_slot] = best_cand;
    cost = best_cost;
  }
  return medoids;
}

}  // namespace

StatusOr<ClaraResult> Clara(const Dataset& data,
                            const ClaraOptions& options) {
  const size_t n = data.size();
  if (options.k <= 0) return Status::InvalidArgument("k must be > 0");
  if (static_cast<size_t>(options.k) >= n) {
    return Status::InvalidArgument("k must be < number of points");
  }
  if (options.samples <= 0) {
    return Status::InvalidArgument("samples must be > 0");
  }
  const size_t k = static_cast<size_t>(options.k);
  size_t sample_size = options.sample_size > 0
                           ? static_cast<size_t>(options.sample_size)
                           : 40 + 2 * k;
  sample_size = std::min(sample_size, n);
  if (sample_size < k + 1) sample_size = std::min(n, k + 1);

  Rng rng(options.seed);
  ClaraResult best;
  best.cost = kInf;

  for (int s = 0; s < options.samples; ++s) {
    // Sample without replacement.
    std::unordered_set<size_t> chosen;
    std::vector<size_t> rows;
    while (rows.size() < sample_size) {
      size_t x = rng.UniformInt(n);
      if (chosen.insert(x).second) rows.push_back(x);
    }
    std::vector<size_t> sample_medoids =
        PamOnSample(data, rows, k, options.max_pam_iterations);

    // Evaluate this medoid set against the whole dataset.
    std::vector<size_t> medoids;
    medoids.reserve(k);
    for (size_t m : sample_medoids) medoids.push_back(rows[m]);
    double cost = 0.0;
    std::vector<int> labels(n, -1);
    for (size_t i = 0; i < n; ++i) {
      double d_best = kInf;
      for (size_t m = 0; m < k; ++m) {
        double d = Distance(data.Row(i), data.Row(medoids[m]));
        if (d < d_best) {
          d_best = d;
          labels[i] = static_cast<int>(m);
        }
      }
      cost += d_best;
    }
    if (cost < best.cost) {
      best.cost = cost;
      best.medoids = std::move(medoids);
      best.labels = std::move(labels);
      best.best_sample = s;
    }
  }

  best.clusters.assign(k, CfVector(data.dim()));
  for (size_t i = 0; i < n; ++i) {
    best.clusters[static_cast<size_t>(best.labels[i])].AddPoint(
        data.Row(i), data.Weight(i));
  }
  return best;
}

}  // namespace birch
