// Lloyd k-means over raw points with k-means++ seeding. Used as a
// sanity baseline next to BIRCH and CLARANS; BIRCH's Phase 3 has its
// own CF-weighted variant in birch/global_cluster.
#ifndef BIRCH_BASELINES_KMEANS_H_
#define BIRCH_BASELINES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"
#include "util/status.h"

namespace birch {

namespace exec {
class ThreadPool;
}  // namespace exec

struct KMeansOptions {
  int k = 0;
  int max_iterations = 100;
  uint64_t seed = 42;
  /// Optional worker pool for the assignment / centroid sweeps.
  /// nullptr runs them inline (exact serial arithmetic); with a pool,
  /// per-chunk partials fold in chunk order, deterministic for a fixed
  /// (seed, pool size).
  exec::ThreadPool* pool = nullptr;
};

struct KMeansResult {
  std::vector<int> labels;
  std::vector<CfVector> clusters;
  int iterations = 0;
  double sse = 0.0;
};

/// Clusters `data` into k groups. Fails on k <= 0 or k > data.size().
StatusOr<KMeansResult> KMeans(const Dataset& data,
                              const KMeansOptions& options);

}  // namespace birch

#endif  // BIRCH_BASELINES_KMEANS_H_
