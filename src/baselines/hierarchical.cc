#include "baselines/hierarchical.h"

#include <vector>

namespace birch {

StatusOr<GlobalClustering> HierarchicalCluster(const Dataset& data, int k,
                                               DistanceMetric metric) {
  std::vector<CfVector> singletons;
  singletons.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    singletons.push_back(CfVector::FromPoint(data.Row(i), data.Weight(i)));
  }
  GlobalClusterOptions o;
  o.k = k;
  o.metric = metric;
  o.algorithm = GlobalAlgorithm::kHierarchical;
  return GlobalCluster(singletons, o);
}

}  // namespace birch
