#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "util/math.h"
#include "util/random.h"

namespace birch {

namespace {

std::vector<std::vector<double>> SeedPlusPlus(const Dataset& data, int k,
                                              Rng* rng) {
  const size_t n = data.size();
  std::vector<std::vector<double>> seeds;
  seeds.reserve(static_cast<size_t>(k));
  size_t first = rng->UniformInt(n);
  auto row0 = data.Row(first);
  seeds.emplace_back(row0.begin(), row0.end());

  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (seeds.size() < static_cast<size_t>(k)) {
    const auto& latest = seeds.back();
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], SquaredDistance(data.Row(i), latest));
      sum += d2[i];
    }
    size_t chosen = n - 1;
    if (sum > 0.0) {
      double pick = rng->NextDouble() * sum;
      for (size_t i = 0; i < n; ++i) {
        pick -= d2[i];
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);
    }
    auto row = data.Row(chosen);
    seeds.emplace_back(row.begin(), row.end());
  }
  return seeds;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const Dataset& data,
                              const KMeansOptions& options) {
  if (options.k <= 0) return Status::InvalidArgument("k must be > 0");
  if (static_cast<size_t>(options.k) > data.size()) {
    return Status::InvalidArgument("k exceeds number of points");
  }
  Rng rng(options.seed);
  auto centers = SeedPlusPlus(data, options.k, &rng);
  const size_t n = data.size();
  const size_t k = static_cast<size_t>(options.k);

  KMeansResult result;
  result.labels.assign(n, -1);
  const size_t num_chunks =
      exec::ParallelForNumChunks(options.pool, n, /*min_per_chunk=*/256);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment sweep: every point is independent.
    std::vector<uint8_t> chunk_changed(num_chunks, 0);
    exec::ParallelFor(
        options.pool, n,
        [&](size_t begin, size_t end, size_t chunk) {
          bool local_changed = false;
          for (size_t i = begin; i < end; ++i) {
            auto row = data.Row(i);
            int best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
              double d = SquaredDistance(row, centers[c]);
              if (d < best_d) {
                best_d = d;
                best = static_cast<int>(c);
              }
            }
            if (result.labels[i] != best) {
              result.labels[i] = best;
              local_changed = true;
            }
          }
          if (local_changed) chunk_changed[chunk] = 1;
        },
        /*min_per_chunk=*/256);
    bool changed =
        std::any_of(chunk_changed.begin(), chunk_changed.end(),
                    [](uint8_t c) { return c != 0; });
    ++result.iterations;
    if (!changed && iter > 0) break;

    // Centroid sums: single chunk keeps the exact serial accumulation
    // order; chunked partials fold in chunk order (deterministic for a
    // fixed chunk count).
    std::vector<CfVector> sums(k, CfVector(data.dim()));
    if (num_chunks <= 1) {
      for (size_t i = 0; i < n; ++i) {
        sums[static_cast<size_t>(result.labels[i])].AddPoint(data.Row(i),
                                                             data.Weight(i));
      }
    } else {
      std::vector<std::vector<CfVector>> partial(num_chunks);
      exec::ParallelFor(
          options.pool, n,
          [&](size_t begin, size_t end, size_t chunk) {
            auto& local = partial[chunk];
            local.assign(k, CfVector(data.dim()));
            for (size_t i = begin; i < end; ++i) {
              local[static_cast<size_t>(result.labels[i])].AddPoint(
                  data.Row(i), data.Weight(i));
            }
          },
          /*min_per_chunk=*/256);
      for (const auto& local : partial) {
        for (size_t c = 0; c < k; ++c) sums[c].Add(local[c]);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (sums[c].empty()) {
        // Re-seed an empty cluster at the point farthest from its
        // center.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d = SquaredDistance(
              data.Row(i),
              centers[static_cast<size_t>(result.labels[i])]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        auto row = data.Row(far);
        centers[c].assign(row.begin(), row.end());
        continue;
      }
      sums[c].CentroidInto(&centers[c]);
    }
  }

  result.clusters.assign(k, CfVector(data.dim()));
  for (size_t i = 0; i < n; ++i) {
    result.clusters[static_cast<size_t>(result.labels[i])].AddPoint(
        data.Row(i), data.Weight(i));
  }
  result.sse = 0.0;
  for (const auto& c : result.clusters) result.sse += c.SumSquaredDeviation();
  return result;
}

}  // namespace birch
