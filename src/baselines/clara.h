// CLARA (Kaufman & Rousseeuw 1990) — the sampling-based K-medoid
// method the paper names alongside CLARANS. CLARA draws a handful of
// random samples (size 40 + 2K by the book), runs PAM (exact iterative
// best-swap medoid search) on each sample, evaluates each sample's
// medoids against the WHOLE dataset, and keeps the best set. Its cost
// is dominated by the full-dataset evaluations, so it scales better
// than PAM but its quality is capped by what a small sample can see —
// exactly the trade-off BIRCH's CF summary avoids.
#ifndef BIRCH_BASELINES_CLARA_H_
#define BIRCH_BASELINES_CLARA_H_

#include <cstdint>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"
#include "util/status.h"

namespace birch {

struct ClaraOptions {
  int k = 0;
  /// Number of samples drawn (book default: 5).
  int samples = 5;
  /// Sample size; <= 0 uses the book's 40 + 2k.
  int sample_size = 0;
  /// PAM iteration cap per sample.
  int max_pam_iterations = 50;
  uint64_t seed = 42;
};

struct ClaraResult {
  std::vector<size_t> medoids;  // row indices into the full dataset
  std::vector<int> labels;
  std::vector<CfVector> clusters;
  double cost = 0.0;  // total distance to medoids over the full data
  int best_sample = -1;
};

/// Runs CLARA on `data`. Fails on k <= 0 or k >= data.size().
StatusOr<ClaraResult> Clara(const Dataset& data, const ClaraOptions& options);

}  // namespace birch

#endif  // BIRCH_BASELINES_CLARA_H_
