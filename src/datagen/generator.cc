#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/math.h"

namespace birch {

std::vector<std::vector<double>> PlaceCenters(const GeneratorOptions& o,
                                              Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(o.k));
  switch (o.pattern) {
    case PlacementPattern::kGrid: {
      // sqrt(K) x sqrt(K) grid with spacing kg on the first two
      // dimensions (extra dimensions stay 0).
      int side = static_cast<int>(std::ceil(std::sqrt(o.k)));
      for (int i = 0; i < o.k; ++i) {
        std::vector<double> c(o.dim, 0.0);
        c[0] = (i % side) * o.grid_spacing;
        if (o.dim > 1) c[1] = (i / side) * o.grid_spacing;
        centers.push_back(std::move(c));
      }
      break;
    }
    case PlacementPattern::kSine: {
      // Centers on y = A * sin(2*pi*nc * i / K), x marching uniformly;
      // amplitude scales with the x extent so the curve is visible.
      double x_step = o.grid_spacing;
      double amplitude = o.k * o.grid_spacing / 8.0;
      for (int i = 0; i < o.k; ++i) {
        std::vector<double> c(o.dim, 0.0);
        c[0] = i * x_step;
        double phase = 2.0 * std::numbers::pi * o.sine_cycles *
                       static_cast<double>(i) / static_cast<double>(o.k);
        if (o.dim > 1) c[1] = amplitude * std::sin(phase);
        centers.push_back(std::move(c));
      }
      break;
    }
    case PlacementPattern::kRandom: {
      double range = o.random_range > 0.0
                         ? o.random_range
                         : o.k * o.grid_spacing / 4.0;
      for (int i = 0; i < o.k; ++i) {
        std::vector<double> c(o.dim, 0.0);
        for (auto& v : c) v = rng->Uniform(0.0, range);
        centers.push_back(std::move(c));
      }
      break;
    }
  }
  return centers;
}

GeneratorOptions IllConditionedOptions(size_t dim, int k, double offset,
                                       uint64_t seed) {
  GeneratorOptions o;
  o.dim = dim;
  o.k = k;
  o.n_low = o.n_high = 500;
  o.r_low = o.r_high = 1.0;  // unit spread: tiny next to offset^2
  o.pattern = PlacementPattern::kGrid;
  o.grid_spacing = 16.0;  // well separated relative to the radius
  o.center_offset = offset;
  o.seed = seed;
  return o;
}

StatusOr<GeneratedData> Generate(const GeneratorOptions& o) {
  if (o.dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (o.k <= 0) return Status::InvalidArgument("k must be > 0");
  if (o.n_low < 0 || o.n_high < o.n_low) {
    return Status::InvalidArgument("need 0 <= n_low <= n_high");
  }
  if (o.r_low < 0.0 || o.r_high < o.r_low) {
    return Status::InvalidArgument("need 0 <= r_low <= r_high");
  }
  if (o.noise_fraction < 0.0 || o.noise_fraction >= 1.0) {
    return Status::InvalidArgument("noise_fraction must be in [0,1)");
  }

  Rng rng(o.seed);
  GeneratedData out;
  out.data = Dataset(o.dim);

  std::vector<std::vector<double>> centers = PlaceCenters(o, &rng);
  if (o.center_offset != 0.0) {
    for (auto& c : centers) {
      for (auto& v : c) v += o.center_offset;
    }
  }

  // Per-cluster draws.
  out.actual.resize(static_cast<size_t>(o.k));
  size_t total_cluster_points = 0;
  for (int c = 0; c < o.k; ++c) {
    auto& a = out.actual[static_cast<size_t>(c)];
    a.center = centers[static_cast<size_t>(c)];
    a.points = static_cast<int>(rng.UniformInt(
        static_cast<int64_t>(o.n_low), static_cast<int64_t>(o.n_high)));
    a.radius_param = rng.Uniform(o.r_low, o.r_high);
    a.cf = CfVector(o.dim);
    total_cluster_points += static_cast<size_t>(a.points);
  }

  size_t noise_points = 0;
  if (o.noise_fraction > 0.0) {
    noise_points = static_cast<size_t>(
        o.noise_fraction / (1.0 - o.noise_fraction) *
        static_cast<double>(total_cluster_points));
  }
  out.data.Reserve(total_cluster_points + noise_points);
  out.truth.reserve(total_cluster_points + noise_points);

  // Bounding box of the centers (noise spreads over it, padded by 2x
  // the largest radius).
  std::vector<double> lo(o.dim, 0.0), hi(o.dim, 0.0);
  for (size_t t = 0; t < o.dim; ++t) {
    lo[t] = hi[t] = centers[0][t];
    for (const auto& c : centers) {
      lo[t] = std::min(lo[t], c[t]);
      hi[t] = std::max(hi[t], c[t]);
    }
    lo[t] -= 2.0 * o.r_high;
    hi[t] += 2.0 * o.r_high;
  }

  // Emit cluster points (ordered: cluster by cluster).
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(o.dim));
  std::vector<double> p(o.dim);
  for (int c = 0; c < o.k; ++c) {
    auto& a = out.actual[static_cast<size_t>(c)];
    double sigma = a.radius_param * inv_sqrt_d;
    for (int i = 0; i < a.points; ++i) {
      for (;;) {
        for (size_t t = 0; t < o.dim; ++t) {
          p[t] = rng.Gaussian(a.center[t], sigma);
        }
        if (o.max_distance_radii <= 0.0) break;
        double limit = o.max_distance_radii * a.radius_param;
        if (SquaredDistance(p, a.center) <= limit * limit) break;
      }
      if (o.quantize_points_f32) {
        for (auto& v : p) v = static_cast<double>(static_cast<float>(v));
      }
      out.data.Append(p);
      out.truth.push_back(c);
      a.cf.AddPoint(p);
    }
  }

  // Noise points, appended after the clusters.
  for (size_t i = 0; i < noise_points; ++i) {
    for (size_t t = 0; t < o.dim; ++t) p[t] = rng.Uniform(lo[t], hi[t]);
    if (o.quantize_points_f32) {
      for (auto& v : p) v = static_cast<double>(static_cast<float>(v));
    }
    out.data.Append(p);
    out.truth.push_back(-1);
  }

  if (o.order == InputOrder::kRandomized) {
    // Shuffle rows and truth together.
    std::vector<size_t> perm(out.data.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    rng.Shuffle(&perm);
    Dataset shuffled(o.dim);
    shuffled.Reserve(out.data.size());
    std::vector<int> truth_shuffled(out.truth.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      shuffled.Append(out.data.Row(perm[i]));
      truth_shuffled[i] = out.truth[perm[i]];
    }
    out.data = std::move(shuffled);
    out.truth = std::move(truth_shuffled);
  }
  return out;
}

}  // namespace birch
