#include "datagen/streaming_generator.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace birch {

StatusOr<std::unique_ptr<StreamingGenerator>> StreamingGenerator::Create(
    const GeneratorOptions& options) {
  // Reuse Generate()'s validation by checking the same conditions.
  if (options.dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (options.k <= 0) return Status::InvalidArgument("k must be > 0");
  if (options.n_low < 0 || options.n_high < options.n_low) {
    return Status::InvalidArgument("need 0 <= n_low <= n_high");
  }
  if (options.r_low < 0.0 || options.r_high < options.r_low) {
    return Status::InvalidArgument("need 0 <= r_low <= r_high");
  }
  if (options.noise_fraction < 0.0 || options.noise_fraction >= 1.0) {
    return Status::InvalidArgument("noise_fraction must be in [0,1)");
  }
  return std::unique_ptr<StreamingGenerator>(
      new StreamingGenerator(options));
}

StreamingGenerator::StreamingGenerator(const GeneratorOptions& options)
    : options_(options), rng_(options.seed) {
  Reset();
}

void StreamingGenerator::Reset() {
  rng_.Seed(options_.seed);
  actual_.clear();
  sigma_.clear();
  remaining_.clear();

  std::vector<std::vector<double>> centers = PlaceCenters(options_, &rng_);
  const double inv_sqrt_d =
      1.0 / std::sqrt(static_cast<double>(options_.dim));
  uint64_t cluster_total = 0;
  for (int c = 0; c < options_.k; ++c) {
    ActualCluster a;
    a.center = centers[static_cast<size_t>(c)];
    a.points = static_cast<int>(
        rng_.UniformInt(static_cast<int64_t>(options_.n_low),
                        static_cast<int64_t>(options_.n_high)));
    a.radius_param = rng_.Uniform(options_.r_low, options_.r_high);
    sigma_.push_back(a.radius_param * inv_sqrt_d);
    remaining_.push_back(static_cast<uint64_t>(a.points));
    cluster_total += static_cast<uint64_t>(a.points);
    actual_.push_back(std::move(a));
  }
  noise_remaining_ = 0;
  if (options_.noise_fraction > 0.0) {
    noise_remaining_ = static_cast<uint64_t>(
        options_.noise_fraction / (1.0 - options_.noise_fraction) *
        static_cast<double>(cluster_total));
  }
  remaining_total_ = cluster_total + noise_remaining_;
  total_points_ = remaining_total_;

  noise_lo_.assign(options_.dim, 0.0);
  noise_hi_.assign(options_.dim, 0.0);
  for (size_t t = 0; t < options_.dim; ++t) {
    noise_lo_[t] = noise_hi_[t] = centers[0][t];
    for (const auto& c : centers) {
      noise_lo_[t] = std::min(noise_lo_[t], c[t]);
      noise_hi_[t] = std::max(noise_hi_[t], c[t]);
    }
    noise_lo_[t] -= 2.0 * options_.r_high;
    noise_hi_[t] += 2.0 * options_.r_high;
  }
  next_ordered_cluster_ = 0;
  last_truth_ = -1;
}

Status StreamingGenerator::Rewind() {
  Reset();
  return Status::OK();
}

bool StreamingGenerator::Next(std::span<double> out, double* weight) {
  if (remaining_total_ == 0) return false;
  *weight = 1.0;

  // Pick the owner: ordered mode walks clusters then noise; randomized
  // mode draws proportionally to remaining counts.
  int owner;  // -1 = noise
  if (options_.order == InputOrder::kOrdered) {
    while (next_ordered_cluster_ < remaining_.size() &&
           remaining_[next_ordered_cluster_] == 0) {
      ++next_ordered_cluster_;
    }
    owner = next_ordered_cluster_ < remaining_.size()
                ? static_cast<int>(next_ordered_cluster_)
                : -1;
  } else {
    uint64_t pick = rng_.UniformInt(remaining_total_);
    owner = -1;
    for (size_t c = 0; c < remaining_.size(); ++c) {
      if (pick < remaining_[c]) {
        owner = static_cast<int>(c);
        break;
      }
      pick -= remaining_[c];
    }
  }

  if (owner < 0) {
    for (size_t t = 0; t < options_.dim; ++t) {
      out[t] = rng_.Uniform(noise_lo_[t], noise_hi_[t]);
    }
    --noise_remaining_;
  } else {
    const auto& a = actual_[static_cast<size_t>(owner)];
    double sigma = sigma_[static_cast<size_t>(owner)];
    for (;;) {
      for (size_t t = 0; t < options_.dim; ++t) {
        out[t] = rng_.Gaussian(a.center[t], sigma);
      }
      if (options_.max_distance_radii <= 0.0) break;
      double limit = options_.max_distance_radii * a.radius_param;
      double d2 = 0.0;
      for (size_t t = 0; t < options_.dim; ++t) {
        double d = out[t] - a.center[t];
        d2 += d * d;
      }
      if (d2 <= limit * limit) break;
    }
    --remaining_[static_cast<size_t>(owner)];
  }
  --remaining_total_;
  last_truth_ = owner;
  return true;
}

}  // namespace birch
