// Synthetic dataset generator reimplementing the paper's (Sec. 6.2,
// Table 1). A dataset is K clusters whose centers are placed on a grid,
// on a sine curve, or at random; each cluster draws a point count from
// [n_l, n_h] and a radius from [r_l, r_h]; points are Gaussian around
// the center with per-dimension sigma = r/sqrt(d) so the expected
// cluster radius (RMS distance to centroid) equals r. A fraction rn of
// uniform background noise can be added, and the emitted order is
// either "ordered" (cluster by cluster, noise at the end) or fully
// randomized.
#ifndef BIRCH_DATAGEN_GENERATOR_H_
#define BIRCH_DATAGEN_GENERATOR_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace birch {

enum class PlacementPattern { kGrid = 0, kSine, kRandom };

enum class InputOrder { kRandomized = 0, kOrdered };

/// Table-1 parameters.
struct GeneratorOptions {
  size_t dim = 2;
  int k = 100;                   // number of clusters
  int n_low = 1000;              // points per cluster, lower
  int n_high = 1000;             // points per cluster, higher
  double r_low = std::sqrt(2.0); // cluster radius, lower
  double r_high = std::sqrt(2.0);
  PlacementPattern pattern = PlacementPattern::kGrid;
  double grid_spacing = 4.0;     // kg: distance between grid neighbours
  int sine_cycles = 4;           // nc: full sine cycles across K centers
  double random_range = 0.0;     // kRandom box side; 0 = auto (k * kg / 4)
  double noise_fraction = 0.0;   // rn: uniform background noise
  InputOrder order = InputOrder::kRandomized;
  /// Resample Gaussian draws farther than this many radii from the
  /// center ("outsider" control); 0 disables.
  double max_distance_radii = 0.0;
  /// Added to every coordinate of every cluster center. Large values
  /// (~1e8) with tight radii make the dataset ill-conditioned for the
  /// classic (N, LS, SS) CF representation: SS and ||LS||^2/N agree to
  /// ~16 digits and their difference (the actual spread) cancels.
  double center_offset = 0.0;
  /// Round every emitted coordinate through float32 (the "float32
  /// leg"): models single-precision sensor data and exercises the
  /// float32 CF storage mode.
  bool quantize_points_f32 = false;
  uint64_t seed = 42;
};

/// A tight-cluster workload at distance `offset` from the origin: unit
/// point spread on a coarse grid, so cluster structure is perfectly
/// resolvable in exact arithmetic but cancels out of classic
/// (N, LS, SS) CFs once offset^2 dwarfs the spread.
GeneratorOptions IllConditionedOptions(size_t dim, int k, double offset,
                                       uint64_t seed);

/// Ground truth for one generated cluster.
struct ActualCluster {
  std::vector<double> center;
  double radius_param = 0.0;  // the r drawn from [r_l, r_h]
  int points = 0;
  CfVector cf;  // exact CF of the generated points
};

/// A generated dataset plus its ground truth.
struct GeneratedData {
  Dataset data;
  /// Per-row ground-truth cluster id; -1 for noise points.
  std::vector<int> truth;
  std::vector<ActualCluster> actual;

  GeneratedData() : data(2) {}
};

/// Generates a dataset per `options`. Fails on invalid parameters.
StatusOr<GeneratedData> Generate(const GeneratorOptions& options);

/// Places the K cluster centers for `options` (exposed for tests).
std::vector<std::vector<double>> PlaceCenters(const GeneratorOptions& options,
                                              Rng* rng);

}  // namespace birch

#endif  // BIRCH_DATAGEN_GENERATOR_H_
