// Streaming variant of the synthetic generator: emits the same kind of
// workload as Generate() but one point at a time in O(K) state, never
// materializing the dataset — so the out-of-core experiments can
// cluster tens of millions of points against a fixed memory budget.
// Randomized order is produced online by drawing the owning cluster
// (or the noise pool) with probability proportional to its remaining
// point count. Implements birch::PointSource, and is rewindable (the
// stream is deterministic for a seed).
#ifndef BIRCH_DATAGEN_STREAMING_GENERATOR_H_
#define BIRCH_DATAGEN_STREAMING_GENERATOR_H_

#include <memory>
#include <vector>

#include "birch/point_source.h"
#include "datagen/generator.h"
#include "util/random.h"

namespace birch {

class StreamingGenerator : public PointSource {
 public:
  /// Fails on the same parameter errors as Generate().
  static StatusOr<std::unique_ptr<StreamingGenerator>> Create(
      const GeneratorOptions& options);

  size_t dim() const override { return options_.dim; }
  uint64_t SizeHint() const override { return total_points_; }
  bool Next(std::span<double> out, double* weight) override;
  Status Rewind() override;

  /// Ground-truth cluster of the most recently emitted point
  /// (-1 = noise). Undefined before the first Next().
  int last_truth() const { return last_truth_; }

  /// Cluster centers / radii / counts (CFs are NOT accumulated — this
  /// is a stream).
  const std::vector<ActualCluster>& actual() const { return actual_; }

  uint64_t total_points() const { return total_points_; }

 private:
  explicit StreamingGenerator(const GeneratorOptions& options);

  void Reset();

  GeneratorOptions options_;
  Rng rng_;
  std::vector<ActualCluster> actual_;
  std::vector<double> sigma_;           // per-cluster point stddev
  std::vector<uint64_t> remaining_;     // per cluster
  uint64_t noise_remaining_ = 0;
  uint64_t remaining_total_ = 0;
  uint64_t total_points_ = 0;
  std::vector<double> noise_lo_, noise_hi_;
  size_t next_ordered_cluster_ = 0;     // ordered emission cursor
  int last_truth_ = -1;
};

}  // namespace birch

#endif  // BIRCH_DATAGEN_STREAMING_GENERATOR_H_
