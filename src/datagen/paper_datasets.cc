#include "datagen/paper_datasets.h"

#include <cmath>

namespace birch {

const char* PaperDatasetName(PaperDataset ds) {
  switch (ds) {
    case PaperDataset::kDS1: return "DS1";
    case PaperDataset::kDS2: return "DS2";
    case PaperDataset::kDS3: return "DS3";
    case PaperDataset::kDS1o: return "DS1o";
    case PaperDataset::kDS2o: return "DS2o";
    case PaperDataset::kDS3o: return "DS3o";
  }
  return "?";
}

GeneratorOptions PaperDatasetOptions(PaperDataset ds, int k_override,
                                     int n_override, double noise_fraction,
                                     uint64_t seed) {
  GeneratorOptions o;
  o.dim = 2;
  o.k = 100;
  o.seed = seed;
  o.noise_fraction = noise_fraction;
  o.grid_spacing = 4.0;  // kg = 4 (Table 3)

  switch (ds) {
    case PaperDataset::kDS1o:
      o.order = InputOrder::kOrdered;
      [[fallthrough]];
    case PaperDataset::kDS1:
      o.pattern = PlacementPattern::kGrid;
      o.n_low = o.n_high = 1000;
      o.r_low = o.r_high = std::sqrt(2.0);
      break;
    case PaperDataset::kDS2o:
      o.order = InputOrder::kOrdered;
      [[fallthrough]];
    case PaperDataset::kDS2:
      o.pattern = PlacementPattern::kSine;
      o.n_low = o.n_high = 1000;
      o.r_low = o.r_high = std::sqrt(2.0);
      break;
    case PaperDataset::kDS3o:
      o.order = InputOrder::kOrdered;
      [[fallthrough]];
    case PaperDataset::kDS3:
      o.pattern = PlacementPattern::kRandom;
      o.n_low = 0;
      o.n_high = 2000;
      o.r_low = 0.0;
      o.r_high = 4.0;
      break;
  }
  if (k_override > 0) o.k = k_override;
  if (n_override > 0) {
    if (ds == PaperDataset::kDS3 || ds == PaperDataset::kDS3o) {
      o.n_low = 0;
      o.n_high = 2 * n_override;  // keep the mean at n_override
    } else {
      o.n_low = o.n_high = n_override;
    }
  }
  return o;
}

StatusOr<GeneratedData> GeneratePaperDataset(PaperDataset ds, int k_override,
                                             int n_override,
                                             double noise_fraction,
                                             uint64_t seed) {
  return Generate(
      PaperDatasetOptions(ds, k_override, n_override, noise_fraction, seed));
}

}  // namespace birch
