// The paper's canned datasets (Table 3):
//   DS1: grid,   K=100, n=1000,      r=sqrt(2), kg=4, randomized
//   DS2: sine,   K=100, n=1000,      r=sqrt(2),        randomized
//   DS3: random, K=100, n in 0..2000, r in 0..4,       randomized
// and the ordered variants DS1o/DS2o/DS3o used by the input-order
// sensitivity experiment. A scale factor lets the scalability
// experiments (Figs. 4-5) grow n or K while keeping the shape.
#ifndef BIRCH_DATAGEN_PAPER_DATASETS_H_
#define BIRCH_DATAGEN_PAPER_DATASETS_H_

#include <string>

#include "datagen/generator.h"

namespace birch {

enum class PaperDataset { kDS1 = 0, kDS2, kDS3, kDS1o, kDS2o, kDS3o };

/// Human-readable name ("DS1", "DS2o", ...).
const char* PaperDatasetName(PaperDataset ds);

/// Generator options for a paper dataset. `k_override` and
/// `n_override` (0 = paper value) scale the dataset for the
/// scalability experiments; `noise_fraction` adds the rn% noise used by
/// the outlier-option experiments.
GeneratorOptions PaperDatasetOptions(PaperDataset ds, int k_override = 0,
                                     int n_override = 0,
                                     double noise_fraction = 0.0,
                                     uint64_t seed = 42);

/// Generates the dataset.
StatusOr<GeneratedData> GeneratePaperDataset(PaperDataset ds,
                                             int k_override = 0,
                                             int n_override = 0,
                                             double noise_fraction = 0.0,
                                             uint64_t seed = 42);

}  // namespace birch

#endif  // BIRCH_DATAGEN_PAPER_DATASETS_H_
