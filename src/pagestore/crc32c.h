// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used for
// per-page integrity verification in the PageStore. Software
// slice-by-one implementation: the pages are small (~1 KB) and checksum
// time is negligible next to the simulated I/O it protects. CRC32C
// detects all single-bit errors and all burst errors up to 32 bits,
// which is exactly the torn-write/bit-rot class the FaultInjector
// models.
#ifndef BIRCH_PAGESTORE_CRC32C_H_
#define BIRCH_PAGESTORE_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace birch {

namespace internal {

/// 256-entry lookup table for the reflected CRC32C polynomial.
constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace internal

/// CRC32C of `data`, with the conventional init/final inversion.
inline uint32_t Crc32c(std::span<const uint8_t> data) {
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = internal::kCrc32cTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace birch

#endif  // BIRCH_PAGESTORE_CRC32C_H_
