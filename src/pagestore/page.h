// Fixed-size page abstraction for the simulated disk.
#ifndef BIRCH_PAGESTORE_PAGE_H_
#define BIRCH_PAGESTORE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace birch {

/// Identifies a page within a PageStore.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// A page is an owned byte buffer holding the *stored* image (raw page
/// bytes, or the compressed envelope when the store runs a codec) plus
/// the CRC32C of that image, recomputed on every Write and verified on
/// every Read.
struct Page {
  explicit Page(size_t size) : bytes(size, 0) {}
  std::vector<uint8_t> bytes;
  uint32_t crc = 0;
  /// Bytes this page is charged against the store's capacity
  /// (bytes.size() — tracked separately so the store can re-charge
  /// atomically on rewrite).
  size_t charge = 0;
  /// Set by the fault injector: the write was silently dropped and the
  /// contents are unrecoverable (reads return DataLoss).
  bool lost = false;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_H_
