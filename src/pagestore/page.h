// Fixed-size page abstraction for the simulated disk.
#ifndef BIRCH_PAGESTORE_PAGE_H_
#define BIRCH_PAGESTORE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace birch {

/// Identifies a page within a PageStore.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// A page is an owned, fixed-size byte buffer plus the CRC32C of its
/// contents, recomputed on every Write and verified on every Read.
struct Page {
  explicit Page(size_t size) : bytes(size, 0) {}
  std::vector<uint8_t> bytes;
  uint32_t crc = 0;
  /// Set by the fault injector: the write was silently dropped and the
  /// contents are unrecoverable (reads return DataLoss).
  bool lost = false;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_H_
