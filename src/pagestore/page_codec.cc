#include "pagestore/page_codec.h"

#include <cstring>
#include <string>

namespace birch {
namespace {

// ---------------------------------------------------------------------
// Shared transform: XOR-delta over 64-bit words, then a byte-plane
// shuffle (transpose). Both are exact inverses of themselves run in the
// opposite order, and both are defined for any length — bytes past the
// last full word ride along untransformed at the end of the buffer.

size_t WordCount(size_t n) { return n / 8; }

// raw -> [plane0 .. plane7][tail], with plane k holding byte k of every
// XOR-delta'd word.
void ForwardTransform(std::span<const uint8_t> raw,
                      std::vector<uint8_t>* out) {
  const size_t words = WordCount(raw.size());
  out->resize(raw.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, raw.data() + i * 8, 8);
    const uint64_t delta = w ^ prev;
    prev = w;
    for (size_t plane = 0; plane < 8; ++plane) {
      (*out)[plane * words + i] =
          static_cast<uint8_t>((delta >> (plane * 8)) & 0xffu);
    }
  }
  const size_t tail = raw.size() - words * 8;
  if (tail > 0) {
    std::memcpy(out->data() + words * 8, raw.data() + words * 8, tail);
  }
}

void InverseTransform(std::span<const uint8_t> transformed,
                      std::vector<uint8_t>* out) {
  const size_t words = WordCount(transformed.size());
  out->resize(transformed.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < words; ++i) {
    uint64_t delta = 0;
    for (size_t plane = 0; plane < 8; ++plane) {
      delta |= static_cast<uint64_t>(transformed[plane * words + i])
               << (plane * 8);
    }
    const uint64_t w = delta ^ prev;
    prev = w;
    std::memcpy(out->data() + i * 8, &w, 8);
  }
  const size_t tail = transformed.size() - words * 8;
  if (tail > 0) {
    std::memcpy(out->data() + words * 8, transformed.data() + words * 8,
                tail);
  }
}

// ---------------------------------------------------------------------
// Entropy stage: zero run-length coding. A zero byte is emitted as the
// pair {0x00, run_len 1..255}; any other byte is a one-byte literal.
// After the transform the sign/exponent/high-mantissa planes and the
// page's zero tail are long zero runs, which is where the ratio comes
// from.

void ZeroRleEncode(std::span<const uint8_t> in, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(in.size());
  size_t i = 0;
  while (i < in.size()) {
    const uint8_t b = in[i];
    if (b != 0) {
      out->push_back(b);
      ++i;
      continue;
    }
    size_t run = 1;
    while (run < 255 && i + run < in.size() && in[i + run] == 0) ++run;
    out->push_back(0);
    out->push_back(static_cast<uint8_t>(run));
    i += run;
  }
}

// Bounds-checked decode: every read and write is range-verified, and
// the output must land on exactly `expect` bytes with no input left
// over. Any violation means a damaged payload.
Status ZeroRleDecode(std::span<const uint8_t> in, size_t expect,
                     std::vector<uint8_t>* out) {
  out->clear();
  out->resize(expect, 0);
  size_t w = 0;
  size_t i = 0;
  while (i < in.size()) {
    const uint8_t b = in[i++];
    if (b != 0) {
      if (w >= expect) return Status::DataLoss("rle output overrun");
      (*out)[w++] = b;
      continue;
    }
    if (i >= in.size()) return Status::DataLoss("rle truncated zero run");
    const size_t run = in[i++];
    if (run == 0) return Status::DataLoss("rle zero-length run");
    if (w + run > expect) return Status::DataLoss("rle output overrun");
    w += run;  // output is pre-zeroed
  }
  if (w != expect) return Status::DataLoss("rle output underrun");
  return Status::OK();
}

class DeltaRleCodec final : public PageCodec {
 public:
  PageCodecKind kind() const override { return PageCodecKind::kDeltaRle; }

  bool Encode(std::span<const uint8_t> raw,
              std::vector<uint8_t>* out) const override {
    std::vector<uint8_t> transformed;
    ForwardTransform(raw, &transformed);
    ZeroRleEncode(transformed, out);
    return out->size() < raw.size();
  }

  Status Decode(std::span<const uint8_t> payload, size_t raw_len,
                std::vector<uint8_t>* out) const override {
    // A zero run expands one payload pair to at most 255 bytes, so any
    // raw_len beyond 255x the payload is a lie — reject it before
    // allocating, or a crafted 12-byte envelope could demand a 4 GB
    // zeroed buffer just by maxing the u32 length field.
    if (raw_len > payload.size() * 255) {
      return Status::DataLoss("rle raw length implausible for payload");
    }
    std::vector<uint8_t> transformed;
    BIRCH_RETURN_IF_ERROR(ZeroRleDecode(payload, raw_len, &transformed));
    InverseTransform(transformed, out);
    return Status::OK();
  }
};

constexpr uint8_t kFlagRawFallback = 0x01;

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

void StoreU32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v & 0xffu);
  p[1] = static_cast<uint8_t>((v >> 8) & 0xffu);
  p[2] = static_cast<uint8_t>((v >> 16) & 0xffu);
  p[3] = static_cast<uint8_t>((v >> 24) & 0xffu);
}

}  // namespace

const char* PageCodecName(PageCodecKind kind) {
  switch (kind) {
    case PageCodecKind::kNone:
      return "none";
    case PageCodecKind::kDeltaRle:
      return "delta-rle";
  }
  return "unknown";
}

bool ParsePageCodecName(std::string_view name, PageCodecKind* out) {
  if (name == "none") {
    *out = PageCodecKind::kNone;
    return true;
  }
  if (name == "delta-rle") {
    *out = PageCodecKind::kDeltaRle;
    return true;
  }
  return false;
}

const PageCodec* GetPageCodec(PageCodecKind kind) {
  static const DeltaRleCodec delta_rle;
  switch (kind) {
    case PageCodecKind::kNone:
      return nullptr;
    case PageCodecKind::kDeltaRle:
      return &delta_rle;
  }
  return nullptr;
}

std::vector<uint8_t> EncodePageEnvelope(PageCodecKind kind,
                                        std::span<const uint8_t> raw) {
  const PageCodec* codec = GetPageCodec(kind);
  std::vector<uint8_t> payload;
  uint8_t flags = 0;
  if (codec == nullptr || !codec->Encode(raw, &payload)) {
    // Raw fallback: compression did not pay, store the bytes verbatim.
    payload.assign(raw.begin(), raw.end());
    flags = kFlagRawFallback;
  }
  std::vector<uint8_t> stored(kPageEnvelopeHeaderBytes + payload.size());
  stored[0] = kPageEnvelopeMagic;
  stored[1] = kPageEnvelopeVersion;
  stored[2] = static_cast<uint8_t>(kind);
  stored[3] = flags;
  StoreU32(static_cast<uint32_t>(raw.size()), stored.data() + 4);
  StoreU32(static_cast<uint32_t>(payload.size()), stored.data() + 8);
  if (!payload.empty()) {
    std::memcpy(stored.data() + kPageEnvelopeHeaderBytes, payload.data(),
                payload.size());
  }
  return stored;
}

Status DecodePageEnvelope(std::span<const uint8_t> stored,
                          std::vector<uint8_t>* raw) {
  if (stored.size() < kPageEnvelopeHeaderBytes) {
    return Status::DataLoss("page envelope shorter than its header");
  }
  if (stored[0] != kPageEnvelopeMagic) {
    return Status::DataLoss("page envelope magic mismatch");
  }
  if (stored[1] != kPageEnvelopeVersion) {
    return Status::DataLoss("unsupported page envelope version " +
                            std::to_string(stored[1]));
  }
  const uint8_t codec_id = stored[2];
  const uint8_t flags = stored[3];
  const size_t raw_len = LoadU32(stored.data() + 4);
  const size_t comp_len = LoadU32(stored.data() + 8);
  if (comp_len != stored.size() - kPageEnvelopeHeaderBytes) {
    return Status::DataLoss("page envelope payload length mismatch");
  }
  std::span<const uint8_t> payload =
      stored.subspan(kPageEnvelopeHeaderBytes, comp_len);
  if (flags & kFlagRawFallback) {
    if (comp_len != raw_len) {
      return Status::DataLoss("raw-fallback envelope length mismatch");
    }
    raw->assign(payload.begin(), payload.end());
    return Status::OK();
  }
  const PageCodec* codec =
      GetPageCodec(static_cast<PageCodecKind>(codec_id));
  if (codec == nullptr) {
    return Status::DataLoss("page envelope names unknown codec " +
                            std::to_string(codec_id));
  }
  return codec->Decode(payload, raw_len, raw);
}

bool PageEnvelopeIsRawFallback(std::span<const uint8_t> stored) {
  return stored.size() >= kPageEnvelopeHeaderBytes &&
         (stored[3] & kFlagRawFallback) != 0;
}

}  // namespace birch
