// Append-only spill file of fixed-arity double records, packed into
// PageStore pages. BIRCH uses this as the outlier queue: each record is
// a serialized CF entry (N, LS[0..d), SS). The spill file is agnostic to
// the record semantics — it just moves fixed-size records to and from
// the simulated disk.
#ifndef BIRCH_PAGESTORE_SPILL_FILE_H_
#define BIRCH_PAGESTORE_SPILL_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pagestore/page_store.h"
#include "util/status.h"

namespace birch {

/// Append-only queue of records of `record_doubles` doubles each, backed
/// by `store`. Records are buffered into a page-sized staging buffer and
/// flushed to a fresh page when full (or on explicit Flush).
class SpillFile {
 public:
  /// `store` must outlive the SpillFile. A page must hold >= 1 record.
  SpillFile(PageStore* store, size_t record_doubles);

  /// Number of doubles per record.
  size_t record_doubles() const { return record_doubles_; }

  /// Total records appended and not yet drained.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Appends one record (must have exactly record_doubles elements).
  /// Fails with OutOfDisk when the backing store is full; in that case
  /// the record is NOT stored and the caller must drain first.
  Status Append(std::span<const double> record);

  /// Reads every record (flushing the staging buffer first), frees all
  /// backing pages, and resets the file to empty. Records come back in
  /// append order, flattened into `out` (size = size()*record_doubles).
  Status DrainAll(std::vector<double>* out);

 private:
  Status FlushStaging();

  PageStore* store_;
  size_t record_doubles_;
  size_t records_per_page_;
  std::vector<double> staging_;        // < records_per_page_ records
  std::vector<PageId> pages_;          // flushed pages, in append order
  std::vector<size_t> page_records_;   // records stored in each page
  size_t count_ = 0;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_SPILL_FILE_H_
