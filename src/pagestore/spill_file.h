// Append-only spill file of fixed-arity double records, packed into
// PageStore pages. BIRCH uses this as the outlier queue: each record is
// a serialized CF entry (N, LS[0..d), SS). The spill file is agnostic to
// the record semantics — it just moves fixed-size records to and from
// the simulated disk.
//
// The spill file owns the fault response for its store: transient
// IOErrors are retried under a bounded exponential-backoff policy, and
// the drain skips pages the device lost or corrupted (kDataLoss),
// reporting exactly how many records went with them — corrupt records
// are never silently returned as data.
#ifndef BIRCH_PAGESTORE_SPILL_FILE_H_
#define BIRCH_PAGESTORE_SPILL_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pagestore/fault_injector.h"
#include "pagestore/page_store.h"
#include "util/status.h"

namespace birch {

/// Cumulative fault-handling counters for one SpillFile.
struct SpillStats {
  /// Transient IOErrors observed (each retry attempt that failed).
  uint64_t transient_errors = 0;
  /// Extra attempts made after a transient error.
  uint64_t io_retries = 0;
  /// Simulated backoff time spent waiting between retries.
  uint64_t backoff_us = 0;
  /// Pages the drain had to skip (lost, corrupt, or unreadable after
  /// retries) and the records stored in them.
  uint64_t pages_lost = 0;
  uint64_t records_lost = 0;
};

/// Outcome of one DrainAll: how much came back, how much did not.
struct DrainReport {
  size_t records_returned = 0;
  size_t records_lost = 0;
  size_t pages_total = 0;  // flushed pages the drain visited
  size_t pages_lost = 0;
};

/// Append-only queue of records of `record_doubles` doubles each, backed
/// by `store`. Records are buffered into a page-sized staging buffer and
/// flushed to a fresh page when full (or on explicit Flush).
class SpillFile {
 public:
  /// `store` must outlive the SpillFile. A page must hold >= 1 record.
  SpillFile(PageStore* store, size_t record_doubles,
            const RetryPolicy& retry = RetryPolicy{});

  /// Number of doubles per record.
  size_t record_doubles() const { return record_doubles_; }

  /// Total records appended and not yet drained.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const SpillStats& stats() const { return stats_; }

  /// Appends one record (must have exactly record_doubles elements).
  /// Fails with OutOfDisk when the backing store is full and with
  /// IOError when a flush write keeps failing past the retry budget.
  /// Either way the record is NOT stored, the staging buffer is left
  /// intact, and every previously-accepted record remains drainable
  /// exactly once.
  Status Append(std::span<const double> record);

  /// Reads every record (flushing the staging buffer first), frees all
  /// backing pages, and resets the file to empty. Surviving records
  /// come back in append order, flattened into `out`; pages the device
  /// lost or corrupted are skipped, never decoded. With `report`
  /// non-null the drain returns OK and the report carries the loss
  /// counts; with `report` null any loss turns into a kDataLoss status
  /// (out still holds the survivors) so data never vanishes silently.
  /// The drain is state-consistent on every exit path: pages it freed
  /// are dropped from the file immediately, so a retried drain never
  /// re-reads a freed page or double-counts records.
  Status DrainAll(std::vector<double>* out, DrainReport* report = nullptr);

  /// Non-destructive DrainAll: reads every record in append order into
  /// `out` but leaves pages, staging buffer, and counters untouched, so
  /// the file keeps operating as if the peek never happened. Loss
  /// semantics match DrainAll (skipped pages are reported, and stay
  /// allocated), but the reads are stats-neutral: transient faults are
  /// still retried under the full budget, yet SpillStats is left
  /// untouched so a later DrainAll reports only its own fault history.
  /// Checkpointing uses this to copy pending spill state without
  /// consuming it.
  Status PeekAll(std::vector<double>* out, DrainReport* report = nullptr);

 private:
  Status FlushStaging();
  /// Store ops with bounded retry on transient (kIOError) failures.
  /// `stats` receives the retry accounting; nullptr reads are
  /// stats-neutral (used by PeekAll).
  Status WriteWithRetry(PageId id, std::span<const uint8_t> data);
  Status ReadWithRetry(PageId id, std::vector<uint8_t>* out,
                       SpillStats* stats);

  PageStore* store_;
  size_t record_doubles_;
  size_t records_per_page_;
  RetryPolicy retry_;
  std::vector<double> staging_;        // < records_per_page_ records
  std::vector<PageId> pages_;          // flushed pages, in append order
  std::vector<size_t> page_records_;   // records stored in each page
  size_t count_ = 0;
  SpillStats stats_;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_SPILL_FILE_H_
