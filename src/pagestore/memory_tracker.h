// Byte-accounted memory budget — the "M bytes of memory" constraint the
// paper's Phase 1 runs under. CF-tree node allocation charges the
// tracker; when the budget is exhausted the tree must be rebuilt with a
// larger threshold (Sec. 5.1 of the paper).
//
// Thread-safe for concurrent ingest: a tracker may be shared by several
// builders (or charged from pool workers), so the budget check and the
// reservation are one atomic compare-exchange — a plain load followed
// by an add would let two threads both observe headroom and jointly
// overshoot the budget. All counters are relaxed atomics: the tracker
// carries no data dependencies, it is pure accounting.
#ifndef BIRCH_PAGESTORE_MEMORY_TRACKER_H_
#define BIRCH_PAGESTORE_MEMORY_TRACKER_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

namespace birch {

/// Tracks bytes in use against a fixed budget.
class MemoryTracker {
 public:
  /// budget_bytes == 0 means "unlimited".
  explicit MemoryTracker(size_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// True if `bytes` more can be allocated within the budget. Advisory
  /// under concurrency — another thread may take the headroom between
  /// this check and Allocate(); Allocate() itself re-checks atomically.
  bool CanAllocate(size_t bytes) const {
    return budget_ == 0 ||
           used_.load(std::memory_order_relaxed) + bytes <= budget_;
  }

  /// Charges `bytes`. Returns false (and charges nothing) if over
  /// budget. Check-then-reserve is a single CAS loop, so concurrent
  /// callers can never jointly exceed the budget.
  bool Allocate(size_t bytes) {
    size_t cur = used_.load(std::memory_order_relaxed);
    do {
      if (budget_ != 0 && cur + bytes > budget_) return false;
    } while (!used_.compare_exchange_weak(cur, cur + bytes,
                                          std::memory_order_relaxed));
    UpdatePeak(cur + bytes);
    allocations_.fetch_add(1, std::memory_order_relaxed);
    OBS_GAUGE_ADD("mem/used_bytes", bytes);
    return true;
  }

  /// Charges `bytes` even if it exceeds the budget. The CF tree uses
  /// this when a split is already in progress: the insert completes with
  /// a small overdraft (the paper's "h extra pages" slack) and the
  /// caller observes over_budget() and rebuilds.
  void ForceAllocate(size_t bytes) {
    size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    UpdatePeak(now);
    allocations_.fetch_add(1, std::memory_order_relaxed);
    OBS_GAUGE_ADD("mem/used_bytes", bytes);
  }

  /// True when ForceAllocate pushed usage past the budget.
  bool over_budget() const {
    return budget_ != 0 && used_.load(std::memory_order_relaxed) > budget_;
  }

  /// Releases `bytes` previously charged.
  void Free(size_t bytes) {
    size_t prev = used_.fetch_sub(bytes, std::memory_order_relaxed);
    assert(bytes <= prev);
    (void)prev;
    frees_.fetch_add(1, std::memory_order_relaxed);
    OBS_GAUGE_ADD("mem/used_bytes", -static_cast<double>(bytes));
  }

  size_t budget() const { return budget_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t available() const {
    if (budget_ == 0) return static_cast<size_t>(-1);
    size_t u = used_.load(std::memory_order_relaxed);
    return u >= budget_ ? 0 : budget_ - u;
  }
  uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  uint64_t frees() const { return frees_.load(std::memory_order_relaxed); }

 private:
  void UpdatePeak(size_t now) {
    size_t p = peak_.load(std::memory_order_relaxed);
    while (now > p && !peak_.compare_exchange_weak(
                          p, now, std::memory_order_relaxed)) {
    }
  }

  const size_t budget_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> frees_{0};
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_MEMORY_TRACKER_H_
