// Byte-accounted memory budget — the "M bytes of memory" constraint the
// paper's Phase 1 runs under. CF-tree node allocation charges the
// tracker; when the budget is exhausted the tree must be rebuilt with a
// larger threshold (Sec. 5.1 of the paper).
#ifndef BIRCH_PAGESTORE_MEMORY_TRACKER_H_
#define BIRCH_PAGESTORE_MEMORY_TRACKER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace birch {

/// Tracks bytes in use against a fixed budget. Not thread-safe (BIRCH is
/// a single-scan sequential algorithm).
class MemoryTracker {
 public:
  /// budget_bytes == 0 means "unlimited".
  explicit MemoryTracker(size_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// True if `bytes` more can be allocated within the budget.
  bool CanAllocate(size_t bytes) const {
    return budget_ == 0 || used_ + bytes <= budget_;
  }

  /// Charges `bytes`. Returns false (and charges nothing) if over budget.
  bool Allocate(size_t bytes) {
    if (!CanAllocate(bytes)) return false;
    used_ += bytes;
    peak_ = used_ > peak_ ? used_ : peak_;
    ++allocations_;
    return true;
  }

  /// Charges `bytes` even if it exceeds the budget. The CF tree uses
  /// this when a split is already in progress: the insert completes with
  /// a small overdraft (the paper's "h extra pages" slack) and the
  /// caller observes over_budget() and rebuilds.
  void ForceAllocate(size_t bytes) {
    used_ += bytes;
    peak_ = used_ > peak_ ? used_ : peak_;
    ++allocations_;
  }

  /// True when ForceAllocate pushed usage past the budget.
  bool over_budget() const { return budget_ != 0 && used_ > budget_; }

  /// Releases `bytes` previously charged.
  void Free(size_t bytes) {
    assert(bytes <= used_);
    used_ -= bytes;
    ++frees_;
  }

  size_t budget() const { return budget_; }
  size_t used() const { return used_; }
  size_t peak() const { return peak_; }
  size_t available() const {
    return budget_ == 0 ? static_cast<size_t>(-1) : budget_ - used_;
  }
  uint64_t allocations() const { return allocations_; }
  uint64_t frees() const { return frees_; }

 private:
  size_t budget_;
  size_t used_ = 0;
  size_t peak_ = 0;
  uint64_t allocations_ = 0;
  uint64_t frees_ = 0;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_MEMORY_TRACKER_H_
