#include "pagestore/page_store.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pagestore/crc32c.h"
#include "util/timer.h"

namespace birch {

PageStore::PageStore(const PageStoreOptions& options)
    : page_size_(options.page_size),
      capacity_bytes_(options.capacity_bytes),
      codec_(options.codec),
      hot_tier_bytes_(options.codec == PageCodecKind::kNone
                          ? 0
                          : options.hot_tier_bytes),
      injector_(options.faults) {
  assert(page_size_ > 0);
}

PageStore::PageStore(size_t page_size, size_t capacity_bytes,
                     const FaultOptions& faults)
    : PageStore(PageStoreOptions{page_size, capacity_bytes, faults,
                                 PageCodecKind::kNone, 0}) {}

size_t PageStore::stored_bytes(PageId id) const {
  auto it = pages_.find(id);
  return it == pages_.end() ? 0 : it->second.bytes.size();
}

std::vector<uint8_t> PageStore::EncodeStored(std::span<const uint8_t> raw,
                                             bool* fallback) const {
  std::vector<uint8_t> stored = EncodePageEnvelope(codec_, raw);
  *fallback = PageEnvelopeIsRawFallback(stored);
  return stored;
}

void PageStore::HotInsert(PageId id, std::vector<uint8_t> raw) {
  if (hot_tier_bytes_ == 0) return;
  HotErase(id);
  // Demote least-recently-used pages until the new image fits: their
  // decompressed copy is dropped, the compressed cold image remains
  // the (CRC-protected) truth.
  while (!lru_.empty() && hot_bytes_ + raw.size() > hot_tier_bytes_) {
    PageId victim = lru_.back();
    auto vit = hot_.find(victim);
    hot_bytes_ -= vit->second.raw.size();
    lru_.pop_back();
    hot_.erase(vit);
    ++io_.hot_demotions;
    OBS_COUNTER_INC("pagestore/hot_demotions");
  }
  if (raw.size() > hot_tier_bytes_) return;  // tier smaller than a page
  hot_bytes_ += raw.size();
  lru_.push_front(id);
  hot_.emplace(id, HotEntry{lru_.begin(), std::move(raw)});
  OBS_GAUGE_SET("pagestore/hot_bytes", hot_bytes_);
}

void PageStore::HotErase(PageId id) {
  auto it = hot_.find(id);
  if (it == hot_.end()) return;
  hot_bytes_ -= it->second.raw.size();
  lru_.erase(it->second.lru_it);
  hot_.erase(it);
  OBS_GAUGE_SET("pagestore/hot_bytes", hot_bytes_);
}

StatusOr<PageId> PageStore::Allocate() {
  // A fresh page holds zeroes; with a codec that image is stored
  // compressed, so allocation only commits the encoded size and the
  // effective page count scales with the compression ratio.
  Page page(0);
  if (codec_ == PageCodecKind::kNone) {
    page.bytes.assign(page_size_, 0);
  } else {
    bool fallback = false;
    page.bytes = EncodeStored(std::vector<uint8_t>(page_size_, 0),
                              &fallback);
  }
  page.charge = page.bytes.size();
  if (capacity_bytes_ != 0 &&
      used_bytes_ + page.charge > capacity_bytes_) {
    return Status::OutOfDisk("page store at capacity (" +
                             std::to_string(capacity_bytes_) + " bytes)");
  }
  page.crc = Crc32c(page.bytes);
  PageId id = next_id_++;
  used_bytes_ += page.charge;
  pages_.emplace(id, std::move(page));
  OBS_COUNTER_INC("pagestore/pages_allocated");
  OBS_GAUGE_SET("pagestore/used_bytes", used_bytes_);
  return id;
}

Status PageStore::Write(PageId id, std::span<const uint8_t> data) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (data.size() > page_size_) {
    return Status::InvalidArgument("write larger than page size");
  }
  if (injector_.InjectWriteTransient()) {
    ++io_.transient_write_errors;
    OBS_COUNTER_INC("pagestore/transient_write_errors");
    return Status::IOError("transient write fault on page " +
                           std::to_string(id));
  }
  Timer timer;
  Page& page = it->second;
  bool fallback = false;
  std::vector<uint8_t> stored;
  if (codec_ == PageCodecKind::kNone) {
    stored.assign(page_size_, 0);
    std::copy(data.begin(), data.end(), stored.begin());
  } else {
    // The logical page image is always the full page_size bytes: the
    // payload followed by a zeroed tail (mirroring the uncompressed
    // store, where short writes zero-fill the rest of the page).
    std::vector<uint8_t> raw(page_size_, 0);
    std::copy(data.begin(), data.end(), raw.begin());
    stored = EncodeStored(raw, &fallback);
  }
  // Re-charge the page at its new stored size before committing: a
  // page that compressed well yesterday may not fit once rewritten
  // with less compressible data.
  if (capacity_bytes_ != 0 &&
      used_bytes_ - page.charge + stored.size() > capacity_bytes_) {
    return Status::OutOfDisk("page store at capacity (" +
                             std::to_string(capacity_bytes_) +
                             " bytes, compressed)");
  }
  used_bytes_ = used_bytes_ - page.charge + stored.size();
  page.bytes = std::move(stored);
  page.charge = page.bytes.size();
  page.crc = Crc32c(page.bytes);
  page.lost = false;
  // A rewritten page's hot copy is stale; the next read re-decodes.
  HotErase(id);
  // Silent faults: the write reports success, the damage surfaces on
  // the next Read (as DataLoss, via the lost flag or the checksum).
  // Bit flips land in the *stored* image — with a codec that is the
  // compressed envelope, and the CRC over it is what catches the rot.
  if (injector_.InjectPageLoss()) {
    page.lost = true;
  } else {
    size_t bit = 0;
    if (injector_.InjectBitFlip(page.bytes.size() * 8, &bit)) {
      page.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  ++io_.pages_written;
  io_.raw_bytes_written += page_size_;
  io_.stored_bytes_written += page.bytes.size();
  OBS_COUNTER_INC("pagestore/pages_written");
  if (codec_ != PageCodecKind::kNone) {
    if (fallback) {
      ++io_.raw_fallback_writes;
      OBS_COUNTER_INC("pagestore/raw_fallback_writes");
    } else {
      ++io_.compressed_writes;
    }
    OBS_COUNTER_ADD("pagestore/raw_bytes", page_size_);
    OBS_COUNTER_ADD("pagestore/compressed_bytes", page.bytes.size());
    OBS_GAUGE_SET("pagestore/compression_ratio",
                  static_cast<double>(io_.raw_bytes_written) /
                      static_cast<double>(io_.stored_bytes_written));
  }
  OBS_GAUGE_SET("pagestore/used_bytes", used_bytes_);
  OBS_HISTOGRAM_RECORD("pagestore/write_us", timer.Seconds() * 1e6);
  return Status::OK();
}

Status PageStore::Read(PageId id, std::vector<uint8_t>* out) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  // Hot-tier hit: the decompressed image is already in DRAM — no
  // device access, no injector draw, no CRC/decode work.
  if (auto hit = hot_.find(id); hit != hot_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second.lru_it);
    hit->second.lru_it = lru_.begin();
    *out = hit->second.raw;
    ++io_.hot_hits;
    ++io_.pages_read;
    OBS_COUNTER_INC("pagestore/hot_hits");
    OBS_COUNTER_INC("pagestore/pages_read");
    return Status::OK();
  }
  if (injector_.InjectReadTransient()) {
    ++io_.transient_read_errors;
    OBS_COUNTER_INC("pagestore/transient_read_errors");
    return Status::IOError("transient read fault on page " +
                           std::to_string(id));
  }
  Timer timer;
  const Page& page = it->second;
  if (page.lost) {
    ++io_.lost_page_reads;
    OBS_COUNTER_INC("pagestore/lost_page_reads");
    return Status::DataLoss("page " + std::to_string(id) +
                            " was lost (write silently dropped)");
  }
  if (Crc32c(page.bytes) != page.crc) {
    ++io_.checksum_failures;
    OBS_COUNTER_INC("pagestore/checksum_failures");
    TRACE_INSTANT("pagestore/checksum_failure");
    return Status::DataLoss("checksum mismatch on page " +
                            std::to_string(id));
  }
  if (codec_ == PageCodecKind::kNone) {
    *out = page.bytes;
  } else {
    Status st = DecodePageEnvelope(page.bytes, out);
    if (!st.ok()) {
      // CRC passed but the envelope is inconsistent: either the store
      // has a bug or the image was tampered with beyond what a flip
      // looks like. Surface as data loss, never as decoder UB.
      ++io_.envelope_decode_failures;
      OBS_COUNTER_INC("pagestore/envelope_decode_failures");
      return Status::DataLoss("page " + std::to_string(id) +
                              " envelope undecodable: " + st.message());
    }
    ++io_.hot_misses;
    OBS_COUNTER_INC("pagestore/hot_misses");
    if (hot_tier_bytes_ > 0) HotInsert(id, *out);
  }
  ++io_.pages_read;
  OBS_COUNTER_INC("pagestore/pages_read");
  OBS_HISTOGRAM_RECORD("pagestore/read_us", timer.Seconds() * 1e6);
  return Status::OK();
}

Status PageStore::Free(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  HotErase(id);
  used_bytes_ -= it->second.charge;
  pages_.erase(it);
  ++io_.pages_freed;
  OBS_COUNTER_INC("pagestore/pages_freed");
  OBS_GAUGE_SET("pagestore/used_bytes", used_bytes_);
  return Status::OK();
}

Status PageStore::CorruptBitForTesting(PageId id, size_t bit) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (bit >= it->second.bytes.size() * 8) {
    return Status::InvalidArgument("bit index out of range");
  }
  it->second.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  // Rot lives on the device: drop any cached decompressed copy so the
  // next Read actually faces the damaged image.
  HotErase(id);
  return Status::OK();
}

}  // namespace birch
