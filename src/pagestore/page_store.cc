#include "pagestore/page_store.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pagestore/crc32c.h"
#include "util/timer.h"

namespace birch {

PageStore::PageStore(size_t page_size, size_t capacity_bytes,
                     const FaultOptions& faults)
    : page_size_(page_size), capacity_bytes_(capacity_bytes),
      injector_(faults) {
  assert(page_size_ > 0);
}

StatusOr<PageId> PageStore::Allocate() {
  if (capacity_bytes_ != 0 && used_bytes() + page_size_ > capacity_bytes_) {
    return Status::OutOfDisk("page store at capacity (" +
                             std::to_string(capacity_bytes_) + " bytes)");
  }
  PageId id = next_id_++;
  Page page(page_size_);
  page.crc = Crc32c(page.bytes);
  pages_.emplace(id, std::move(page));
  OBS_COUNTER_INC("pagestore/pages_allocated");
  OBS_GAUGE_SET("pagestore/used_bytes", used_bytes());
  return id;
}

Status PageStore::Write(PageId id, std::span<const uint8_t> data) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (data.size() > page_size_) {
    return Status::InvalidArgument("write larger than page size");
  }
  if (injector_.InjectWriteTransient()) {
    ++io_.transient_write_errors;
    OBS_COUNTER_INC("pagestore/transient_write_errors");
    return Status::IOError("transient write fault on page " +
                           std::to_string(id));
  }
  Timer timer;
  Page& page = it->second;
  std::copy(data.begin(), data.end(), page.bytes.begin());
  page.crc = Crc32c(page.bytes);
  page.lost = false;
  // Silent faults: the write reports success, the damage surfaces on
  // the next Read (as DataLoss, via the lost flag or the checksum).
  if (injector_.InjectPageLoss()) {
    page.lost = true;
  } else {
    size_t bit = 0;
    if (injector_.InjectBitFlip(page_size_ * 8, &bit)) {
      page.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  ++io_.pages_written;
  OBS_COUNTER_INC("pagestore/pages_written");
  OBS_HISTOGRAM_RECORD("pagestore/write_us", timer.Seconds() * 1e6);
  return Status::OK();
}

Status PageStore::Read(PageId id, std::vector<uint8_t>* out) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (injector_.InjectReadTransient()) {
    ++io_.transient_read_errors;
    OBS_COUNTER_INC("pagestore/transient_read_errors");
    return Status::IOError("transient read fault on page " +
                           std::to_string(id));
  }
  Timer timer;
  const Page& page = it->second;
  if (page.lost) {
    ++io_.lost_page_reads;
    OBS_COUNTER_INC("pagestore/lost_page_reads");
    return Status::DataLoss("page " + std::to_string(id) +
                            " was lost (write silently dropped)");
  }
  if (Crc32c(page.bytes) != page.crc) {
    ++io_.checksum_failures;
    OBS_COUNTER_INC("pagestore/checksum_failures");
    TRACE_INSTANT("pagestore/checksum_failure");
    return Status::DataLoss("checksum mismatch on page " +
                            std::to_string(id));
  }
  *out = page.bytes;
  ++io_.pages_read;
  OBS_COUNTER_INC("pagestore/pages_read");
  OBS_HISTOGRAM_RECORD("pagestore/read_us", timer.Seconds() * 1e6);
  return Status::OK();
}

Status PageStore::Free(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  pages_.erase(it);
  ++io_.pages_freed;
  OBS_COUNTER_INC("pagestore/pages_freed");
  OBS_GAUGE_SET("pagestore/used_bytes", used_bytes());
  return Status::OK();
}

Status PageStore::CorruptBitForTesting(PageId id, size_t bit) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (bit >= page_size_ * 8) {
    return Status::InvalidArgument("bit index out of range");
  }
  it->second.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  return Status::OK();
}

}  // namespace birch
