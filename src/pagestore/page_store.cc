#include "pagestore/page_store.h"

#include <algorithm>
#include <cassert>

namespace birch {

PageStore::PageStore(size_t page_size, size_t capacity_bytes)
    : page_size_(page_size), capacity_bytes_(capacity_bytes) {
  assert(page_size_ > 0);
}

StatusOr<PageId> PageStore::Allocate() {
  if (capacity_bytes_ != 0 && used_bytes() + page_size_ > capacity_bytes_) {
    return Status::OutOfDisk("page store at capacity (" +
                             std::to_string(capacity_bytes_) + " bytes)");
  }
  PageId id = next_id_++;
  pages_.emplace(id, Page(page_size_));
  return id;
}

Status PageStore::Write(PageId id, std::span<const uint8_t> data) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  if (data.size() > page_size_) {
    return Status::InvalidArgument("write larger than page size");
  }
  std::copy(data.begin(), data.end(), it->second.bytes.begin());
  ++io_.pages_written;
  return Status::OK();
}

Status PageStore::Read(PageId id, std::vector<uint8_t>* out) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  *out = it->second.bytes;
  ++io_.pages_read;
  return Status::OK();
}

Status PageStore::Free(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  pages_.erase(it);
  ++io_.pages_freed;
  return Status::OK();
}

}  // namespace birch
