#include "pagestore/spill_file.h"

#include <cassert>
#include <cstring>

namespace birch {

SpillFile::SpillFile(PageStore* store, size_t record_doubles)
    : store_(store), record_doubles_(record_doubles) {
  assert(record_doubles_ > 0);
  records_per_page_ = store_->page_size() / (record_doubles_ * sizeof(double));
  assert(records_per_page_ >= 1 &&
         "page too small to hold one spill record");
  staging_.reserve(records_per_page_ * record_doubles_);
}

Status SpillFile::Append(std::span<const double> record) {
  if (record.size() != record_doubles_) {
    return Status::InvalidArgument("record arity mismatch");
  }
  if (staging_.size() / record_doubles_ == records_per_page_) {
    BIRCH_RETURN_IF_ERROR(FlushStaging());
  }
  staging_.insert(staging_.end(), record.begin(), record.end());
  ++count_;
  return Status::OK();
}

Status SpillFile::FlushStaging() {
  if (staging_.empty()) return Status::OK();
  auto id_or = store_->Allocate();
  if (!id_or.ok()) return id_or.status();
  std::vector<uint8_t> buf(staging_.size() * sizeof(double));
  std::memcpy(buf.data(), staging_.data(), buf.size());
  BIRCH_RETURN_IF_ERROR(store_->Write(id_or.value(), buf));
  pages_.push_back(id_or.value());
  page_records_.push_back(staging_.size() / record_doubles_);
  staging_.clear();
  return Status::OK();
}

Status SpillFile::DrainAll(std::vector<double>* out) {
  out->clear();
  out->reserve(count_ * record_doubles_);
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < pages_.size(); ++i) {
    BIRCH_RETURN_IF_ERROR(store_->Read(pages_[i], &buf));
    size_t doubles = page_records_[i] * record_doubles_;
    size_t old = out->size();
    out->resize(old + doubles);
    std::memcpy(out->data() + old, buf.data(), doubles * sizeof(double));
    BIRCH_RETURN_IF_ERROR(store_->Free(pages_[i]));
  }
  out->insert(out->end(), staging_.begin(), staging_.end());
  pages_.clear();
  page_records_.clear();
  staging_.clear();
  count_ = 0;
  return Status::OK();
}

}  // namespace birch
