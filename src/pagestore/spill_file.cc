#include "pagestore/spill_file.h"

#include <cassert>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace birch {

SpillFile::SpillFile(PageStore* store, size_t record_doubles,
                     const RetryPolicy& retry)
    : store_(store), record_doubles_(record_doubles), retry_(retry) {
  assert(record_doubles_ > 0);
  records_per_page_ = store_->page_size() / (record_doubles_ * sizeof(double));
  assert(records_per_page_ >= 1 &&
         "page too small to hold one spill record");
  staging_.reserve(records_per_page_ * record_doubles_);
}

Status SpillFile::WriteWithRetry(PageId id, std::span<const uint8_t> data) {
  Status st;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    st = store_->Write(id, data);
    if (st.code() != StatusCode::kIOError) return st;
    ++stats_.transient_errors;
    if (attempt < retry_.max_attempts) {
      ++stats_.io_retries;
      stats_.backoff_us += retry_.BackoffUs(attempt);
      OBS_COUNTER_INC("spill/io_retries");
      OBS_HISTOGRAM_RECORD("spill/backoff_us", retry_.BackoffUs(attempt));
      TRACE_INSTANT("spill/write_retry");
    }
  }
  return st;
}

Status SpillFile::ReadWithRetry(PageId id, std::vector<uint8_t>* out,
                                SpillStats* stats) {
  Status st;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    st = store_->Read(id, out);
    if (st.code() != StatusCode::kIOError) return st;
    // stats == nullptr is the stats-neutral path (PeekAll): the read
    // still gets its full retry budget, but records nothing — a
    // read-only peek must not change the fault accounting a later
    // DrainAll reports.
    if (stats == nullptr) continue;
    ++stats->transient_errors;
    if (attempt < retry_.max_attempts) {
      ++stats->io_retries;
      stats->backoff_us += retry_.BackoffUs(attempt);
      OBS_COUNTER_INC("spill/io_retries");
      OBS_HISTOGRAM_RECORD("spill/backoff_us", retry_.BackoffUs(attempt));
      TRACE_INSTANT("spill/read_retry");
    }
  }
  return st;
}

Status SpillFile::Append(std::span<const double> record) {
  if (record.size() != record_doubles_) {
    return Status::InvalidArgument("record arity mismatch");
  }
  if (staging_.size() / record_doubles_ == records_per_page_) {
    BIRCH_RETURN_IF_ERROR(FlushStaging());
  }
  staging_.insert(staging_.end(), record.begin(), record.end());
  ++count_;
  OBS_COUNTER_INC("spill/records_appended");
  return Status::OK();
}

Status SpillFile::FlushStaging() {
  if (staging_.empty()) return Status::OK();
  auto id_or = store_->Allocate();
  if (!id_or.ok()) return id_or.status();
  std::vector<uint8_t> buf(staging_.size() * sizeof(double));
  std::memcpy(buf.data(), staging_.data(), buf.size());
  Status st = WriteWithRetry(id_or.value(), buf);
  if (!st.ok()) {
    // Give the page back: a failed flush must not leak capacity, and
    // the staging buffer stays intact for the next attempt.
    store_->Free(id_or.value());
    return st;
  }
  pages_.push_back(id_or.value());
  page_records_.push_back(staging_.size() / record_doubles_);
  staging_.clear();
  return Status::OK();
}

Status SpillFile::DrainAll(std::vector<double>* out, DrainReport* report) {
  TRACE_SPAN("spill/drain");
  out->clear();
  out->reserve(count_ * record_doubles_);
  DrainReport rep;
  rep.pages_total = pages_.size();
  std::vector<uint8_t> buf;
  // Every iteration fully consumes its page — returned or accounted
  // lost, then gone from the store — so the trim below can commit the
  // whole prefix. An early return that skipped the trim would leave
  // freed pages in pages_, and a retried drain would re-read them
  // (NotFound) and double-count their records.
  size_t consumed = 0;
  size_t consumed_records = 0;
  Status failure = Status::OK();
  for (size_t i = 0; i < pages_.size(); ++i) {
    Status st = ReadWithRetry(pages_[i], &buf, &stats_);
    if (st.ok()) {
      size_t doubles = page_records_[i] * record_doubles_;
      size_t old = out->size();
      out->resize(old + doubles);
      std::memcpy(out->data() + old, buf.data(), doubles * sizeof(double));
      // Free can only fail if the page vanished between the read and
      // now; either way it no longer occupies the store, and the
      // records are already safely in `out`.
      store_->Free(pages_[i]);
    } else if (st.code() == StatusCode::kDataLoss ||
               st.code() == StatusCode::kIOError ||
               st.code() == StatusCode::kNotFound) {
      // The page is gone: lost, corrupt, unreadable past the retry
      // budget, or no longer known to the store at all. Skip it rather
      // than decode garbage, and account for every record it held —
      // the drain's contract is exact loss reporting, not a crash.
      ++rep.pages_lost;
      rep.records_lost += page_records_[i];
      ++stats_.pages_lost;
      stats_.records_lost += page_records_[i];
      OBS_COUNTER_INC("spill/pages_lost");
      OBS_COUNTER_ADD("spill/records_lost", page_records_[i]);
      TRACE_INSTANT("spill/page_lost");
      if (st.code() != StatusCode::kNotFound) store_->Free(pages_[i]);
    } else {
      // Unexpected structural failure: stop, but stay consistent —
      // everything before this page was consumed exactly once, and
      // everything from it on remains drainable by a retry.
      failure = st;
      break;
    }
    ++consumed;
    consumed_records += page_records_[i];
  }
  if (!failure.ok()) {
    pages_.erase(pages_.begin(),
                 pages_.begin() + static_cast<ptrdiff_t>(consumed));
    page_records_.erase(
        page_records_.begin(),
        page_records_.begin() + static_cast<ptrdiff_t>(consumed));
    count_ -= consumed_records;
    return failure;
  }
  out->insert(out->end(), staging_.begin(), staging_.end());
  pages_.clear();
  page_records_.clear();
  staging_.clear();
  count_ = 0;
  rep.records_returned = out->size() / record_doubles_;
  if (report != nullptr) {
    *report = rep;
    return Status::OK();
  }
  if (rep.records_lost > 0) {
    return Status::DataLoss("spill drain lost " +
                            std::to_string(rep.records_lost) + " records (" +
                            std::to_string(rep.pages_lost) + " pages)");
  }
  return Status::OK();
}

Status SpillFile::PeekAll(std::vector<double>* out, DrainReport* report) {
  TRACE_SPAN("spill/peek");
  out->clear();
  out->reserve(count_ * record_doubles_);
  DrainReport rep;
  rep.pages_total = pages_.size();
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < pages_.size(); ++i) {
    // Stats-neutral read (nullptr): a peek must leave SpillStats — and
    // therefore the robustness accounting a later DrainAll feeds —
    // exactly as it found them.
    Status st = ReadWithRetry(pages_[i], &buf, nullptr);
    if (!st.ok()) {
      if (st.code() != StatusCode::kDataLoss &&
          st.code() != StatusCode::kIOError &&
          st.code() != StatusCode::kNotFound) {
        return st;
      }
      // Unreadable page: skip it (never decode garbage) but leave it
      // allocated — a later DrainAll owns the loss accounting and the
      // Free.
      ++rep.pages_lost;
      rep.records_lost += page_records_[i];
      continue;
    }
    size_t doubles = page_records_[i] * record_doubles_;
    size_t old = out->size();
    out->resize(old + doubles);
    std::memcpy(out->data() + old, buf.data(), doubles * sizeof(double));
  }
  out->insert(out->end(), staging_.begin(), staging_.end());
  rep.records_returned = out->size() / record_doubles_;
  if (report != nullptr) {
    *report = rep;
    return Status::OK();
  }
  if (rep.records_lost > 0) {
    return Status::DataLoss("spill peek lost " +
                            std::to_string(rep.records_lost) + " records (" +
                            std::to_string(rep.pages_lost) + " pages)");
  }
  return Status::OK();
}

}  // namespace birch
