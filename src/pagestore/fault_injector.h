// Deterministic fault injection for the simulated disk. Production
// disks return transient errors, silently drop writes, and flip bits;
// the perfect in-memory PageStore never did, so nothing above it had to
// cope. The FaultInjector draws from a seeded RNG so every failure
// scenario is exactly replayable, and the RetryPolicy describes how
// callers (SpillFile) respond to the transient class.
#ifndef BIRCH_PAGESTORE_FAULT_INJECTOR_H_
#define BIRCH_PAGESTORE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>

#include "util/random.h"
#include "util/status.h"

namespace birch {

/// Per-operation fault probabilities for a PageStore. All rates are in
/// [0, 1]; the default (all zero) is the fault-free device.
struct FaultOptions {
  /// Read fails with a retryable IOError; the page is unharmed.
  double read_transient_rate = 0.0;
  /// Write fails with a retryable IOError; the page is unmodified.
  double write_transient_rate = 0.0;
  /// Write reports success but the page is permanently lost; every
  /// later Read returns DataLoss.
  double page_loss_rate = 0.0;
  /// Write reports success but one random bit of the stored image is
  /// flipped; the page checksum catches it on the next Read (DataLoss).
  double bit_flip_rate = 0.0;
  uint64_t seed = 0xfa17ULL;

  bool enabled() const {
    return read_transient_rate > 0.0 || write_transient_rate > 0.0 ||
           page_loss_rate > 0.0 || bit_flip_rate > 0.0;
  }

  Status Validate() const {
    for (double rate : {read_transient_rate, write_transient_rate,
                        page_loss_rate, bit_flip_rate}) {
      if (rate < 0.0 || rate > 1.0) {
        return Status::InvalidArgument("fault rates must be in [0, 1]");
      }
    }
    return Status::OK();
  }
};

/// Counters for faults actually injected (not merely configured).
struct FaultStats {
  uint64_t transient_reads = 0;
  uint64_t transient_writes = 0;
  uint64_t pages_lost = 0;
  uint64_t bits_flipped = 0;
};

/// Draws fault decisions in call order from a private seeded RNG, so a
/// given (options, operation sequence) pair always fails the same way.
class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultOptions{}) {}
  explicit FaultInjector(const FaultOptions& options)
      : options_(options), rng_(options.seed) {}

  /// True if this Read should fail transiently.
  bool InjectReadTransient() {
    if (!Draw(options_.read_transient_rate)) return false;
    ++stats_.transient_reads;
    return true;
  }

  /// True if this Write should fail transiently.
  bool InjectWriteTransient() {
    if (!Draw(options_.write_transient_rate)) return false;
    ++stats_.transient_writes;
    return true;
  }

  /// True if this Write should silently lose the page.
  bool InjectPageLoss() {
    if (!Draw(options_.page_loss_rate)) return false;
    ++stats_.pages_lost;
    return true;
  }

  /// True if this Write should flip a stored bit; `*bit` gets the index
  /// in [0, bits).
  bool InjectBitFlip(size_t bits, size_t* bit) {
    if (bits == 0 || !Draw(options_.bit_flip_rate)) return false;
    *bit = static_cast<size_t>(rng_.UniformInt(static_cast<uint64_t>(bits)));
    ++stats_.bits_flipped;
    return true;
  }

  bool enabled() const { return options_.enabled(); }
  const FaultOptions& options() const { return options_; }
  const FaultStats& stats() const { return stats_; }

  /// Checkpoint support: capture/restore the draw stream and counters so
  /// a restored run keeps failing (deterministically) where the
  /// original would have.
  RngState rng_state() const { return rng_.GetState(); }
  void set_rng_state(const RngState& st) { rng_.SetState(st); }
  void set_stats(const FaultStats& st) { stats_ = st; }
  /// Swaps the fault configuration. Checkpoint restore replays state the
  /// original device already survived, so the replay runs with injection
  /// off and the real options are reinstated afterwards.
  void set_options(const FaultOptions& o) { options_ = o; }

 private:
  // Rate 0 must not consume randomness: a fault-free store stays
  // byte-identical to one built before fault injection existed.
  bool Draw(double rate) { return rate > 0.0 && rng_.Bernoulli(rate); }

  FaultOptions options_;
  Rng rng_;
  FaultStats stats_;
};

/// Bounded retry-with-exponential-backoff for the transient (IOError)
/// failure class. The simulated disk never actually blocks, so backoff
/// is accounted in virtual microseconds instead of slept.
struct RetryPolicy {
  /// Total tries per operation (1 = no retries).
  int max_attempts = 4;
  /// First wait; doubles per retry up to `backoff_max_us`.
  uint64_t backoff_initial_us = 100;
  uint64_t backoff_max_us = 10000;

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::InvalidArgument("retry max_attempts must be >= 1");
    }
    return Status::OK();
  }

  /// Simulated wait before retry number `retry` (1-based).
  uint64_t BackoffUs(int retry) const {
    uint64_t wait = backoff_initial_us;
    for (int i = 1; i < retry && wait < backoff_max_us; ++i) wait *= 2;
    return wait < backoff_max_us ? wait : backoff_max_us;
  }
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_FAULT_INJECTOR_H_
