// Transparent per-page compression for the PageStore (ROADMAP item 2,
// ZipCache-style). CF pages are highly compressible — runs of sorted,
// similar-magnitude doubles plus a zero tail — so every page can be
// stored as a compact "envelope" instead of page_size raw bytes,
// multiplying the effective disk/memory budget by the compression
// ratio.
//
// Pipeline (applied inside PageStore::Write, undone in Read):
//
//   raw page bytes
//     -> XOR-delta over consecutive 64-bit words   (similar doubles ->
//        words that differ only in low mantissa bits)
//     -> byte-plane shuffle (transpose)            (gathers the now-
//        mostly-zero sign/exponent/high-mantissa bytes into long runs)
//     -> entropy stage (pluggable; built-in: zero run-length coding)
//     -> raw fallback when the pipeline does not beat the input, so the
//        stored size never exceeds raw + envelope header (ratio >= 1).
//
// Envelope layout (little-endian), CRC32C'd as stored — the checksum
// covers the *compressed* image, so bit rot inside a compressed payload
// is caught before the decoder ever sees it:
//
//   [u8 magic 0xC5][u8 version][u8 codec][u8 flags][u32 raw_len]
//   [u32 comp_len][payload: comp_len bytes]
//
// `flags` bit 0 set means the payload is the raw bytes verbatim (the
// fallback); `codec` then records which codec declined. The decoder is
// fully bounds-checked: a corrupt or adversarial envelope yields an
// error status, never out-of-bounds access (exercised under asan/ubsan).
#ifndef BIRCH_PAGESTORE_PAGE_CODEC_H_
#define BIRCH_PAGESTORE_PAGE_CODEC_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace birch {

/// Which codec a store (or checkpoint file) runs its pages through.
/// Values are persisted in page envelopes and checkpoint headers —
/// never renumber.
enum class PageCodecKind : uint8_t {
  kNone = 0,      // pages stored raw, envelope-free (the v1 format)
  kDeltaRle = 1,  // XOR-delta + byte-shuffle + zero-RLE entropy stage
};

/// Stable lowercase name ("none", "delta-rle") for flags and reports.
const char* PageCodecName(PageCodecKind kind);

/// Parses a PageCodecName back; false on unknown names.
bool ParsePageCodecName(std::string_view name, PageCodecKind* out);

/// A page compressor: the delta + byte-shuffle transform is shared, the
/// entropy stage behind Encode/Decode is what implementations plug in.
class PageCodec {
 public:
  virtual ~PageCodec() = default;

  virtual PageCodecKind kind() const = 0;

  /// Compresses `raw` into `*out` (payload only, no envelope). Returns
  /// false when the codec cannot beat storing `raw` verbatim — the
  /// caller then writes a raw-fallback envelope, which is what makes
  /// the ratio >= 1 guarantee unconditional.
  virtual bool Encode(std::span<const uint8_t> raw,
                      std::vector<uint8_t>* out) const = 0;

  /// Inverse of Encode: reconstructs exactly `raw_len` bytes into
  /// `*out`. Must be safe on arbitrary payload bytes: any mismatch
  /// (truncation, trailing garbage, wrong output size) is an error
  /// status, never UB.
  virtual Status Decode(std::span<const uint8_t> payload, size_t raw_len,
                        std::vector<uint8_t>* out) const = 0;
};

/// Static registry lookup; nullptr for kNone (no codec to run).
const PageCodec* GetPageCodec(PageCodecKind kind);

/// Fixed envelope header size in bytes.
inline constexpr size_t kPageEnvelopeHeaderBytes = 12;
inline constexpr uint8_t kPageEnvelopeMagic = 0xC5;
inline constexpr uint8_t kPageEnvelopeVersion = 1;

/// Encodes `raw` through `kind` into a self-describing envelope
/// (falling back to a raw payload when compression does not pay).
/// Output size is at most raw.size() + kPageEnvelopeHeaderBytes.
/// `kind` must not be kNone.
std::vector<uint8_t> EncodePageEnvelope(PageCodecKind kind,
                                        std::span<const uint8_t> raw);

/// Decodes an envelope produced by EncodePageEnvelope back into the
/// original raw bytes. Rejects bad magic/version/lengths/codec ids and
/// payloads that do not reconstruct exactly raw_len bytes with
/// kDataLoss — by the time this runs the CRC already passed, so any
/// inconsistency means the image is damaged (or was never an envelope).
Status DecodePageEnvelope(std::span<const uint8_t> stored,
                          std::vector<uint8_t>* raw);

/// True when the envelope payload was stored verbatim (codec declined).
/// Only meaningful on a buffer DecodePageEnvelope accepts.
bool PageEnvelopeIsRawFallback(std::span<const uint8_t> stored);

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_CODEC_H_
