// Simulated paged disk: page-granular read/write with capacity
// enforcement and I/O accounting. Stands in for the paper's "R bytes of
// disk space" used for outlier entries (Sec. 5.1.4); the behaviours that
// matter — outliers leaving the memory budget, re-absorption costing
// I/O, disk capacity running out — are preserved and measurable.
//
// The device is no longer assumed perfect: every page carries a CRC32C
// checksum verified on Read, and an optional seeded FaultInjector can
// make the store misbehave like a real disk — transient IOErrors,
// silently dropped writes (permanent page loss), and single-bit rot.
// Lost or corrupt pages surface as kDataLoss, which is not retryable;
// transient faults surface as kIOError, which is.
//
// With a PageCodec configured the store is compressed and tiered
// (ROADMAP item 2): pages live compressed in the capacity-charged cold
// store (each page charged at its stored envelope size, so the
// effective budget is M x ratio), CRC32C covers the compressed image,
// and an LRU hot tier of up to `hot_tier_bytes` decompressed pages
// absorbs repeat reads. Callers are unaffected: Write still takes raw
// bytes, Read still returns the raw page_size image.
#ifndef BIRCH_PAGESTORE_PAGE_STORE_H_
#define BIRCH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "pagestore/fault_injector.h"
#include "pagestore/page.h"
#include "pagestore/page_codec.h"
#include "util/status.h"

namespace birch {

/// Cumulative I/O counters for a PageStore.
struct IoStats {
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t pages_freed = 0;
  /// Reads that found a checksum mismatch (bit rot caught by CRC32C).
  uint64_t checksum_failures = 0;
  /// Reads of pages whose write was silently dropped.
  uint64_t lost_page_reads = 0;
  /// Injected transient failures surfaced to callers as kIOError.
  uint64_t transient_read_errors = 0;
  uint64_t transient_write_errors = 0;
  /// Compression accounting (zero unless a codec is configured): raw
  /// page bytes presented to Write vs envelope bytes actually stored.
  uint64_t raw_bytes_written = 0;
  uint64_t stored_bytes_written = 0;
  /// Writes where the codec beat raw vs writes that fell back to a
  /// verbatim payload (the ratio >= 1 guarantee in action).
  uint64_t compressed_writes = 0;
  uint64_t raw_fallback_writes = 0;
  /// Reads of envelopes that passed CRC but failed to decode (possible
  /// only via hostile inputs or store bugs; surfaced as kDataLoss).
  uint64_t envelope_decode_failures = 0;
  /// Hot-tier accounting: reads served from the decompressed DRAM
  /// cache, reads that had to decode the cold image, and evictions of a
  /// decompressed copy back to compressed-only residency.
  uint64_t hot_hits = 0;
  uint64_t hot_misses = 0;
  uint64_t hot_demotions = 0;
};

/// Construction-time configuration for a PageStore.
struct PageStoreOptions {
  /// Logical page size in bytes; must be > 0.
  size_t page_size = 1024;
  /// Cold-store budget; 0 means unlimited. With a codec, pages are
  /// charged at their compressed size, so the store holds ~ratio times
  /// more logical pages than capacity_bytes / page_size.
  size_t capacity_bytes = 0;
  /// Fault model; defaults to the fault-free device.
  FaultOptions faults;
  /// Per-page compression; kNone stores raw page images (v1 format).
  PageCodecKind codec = PageCodecKind::kNone;
  /// DRAM budget for decompressed pages (LRU). 0 = no hot tier, every
  /// read decodes. Ignored when codec == kNone (raw pages are their own
  /// hot copy). Not charged against capacity_bytes: capacity models the
  /// cold device, the hot tier models DRAM in front of it.
  size_t hot_tier_bytes = 0;
};

/// An in-memory map of PageId -> Page posing as a disk. Capacity is
/// enforced in bytes; Allocate fails with OutOfDisk when full.
class PageStore {
 public:
  explicit PageStore(const PageStoreOptions& options);

  /// Legacy spelling of the uncompressed store.
  /// capacity_bytes == 0 means unlimited; page_size must be > 0.
  PageStore(size_t page_size, size_t capacity_bytes = 0,
            const FaultOptions& faults = FaultOptions{});

  size_t page_size() const { return page_size_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes charged against capacity: stored (compressed) sizes, not
  /// logical page sizes. Equal to num_pages() * page_size() when no
  /// codec is configured.
  size_t used_bytes() const { return used_bytes_; }
  size_t num_pages() const { return pages_.size(); }
  PageCodecKind codec() const { return codec_; }
  size_t hot_tier_bytes() const { return hot_tier_bytes_; }
  /// Decompressed bytes currently resident in the hot tier.
  size_t hot_bytes() const { return hot_bytes_; }
  const IoStats& io_stats() const { return io_; }
  const FaultStats& fault_stats() const { return injector_.stats(); }

  /// Bytes page `id` occupies on the device (envelope size with a
  /// codec, page_size without); 0 if the page is not allocated.
  size_t stored_bytes(PageId id) const;

  /// Allocates a zeroed page; fails with OutOfDisk at capacity.
  StatusOr<PageId> Allocate();

  /// Writes `data` (at most page_size bytes; shorter writes are
  /// zero-padded to the full page) and refreshes the checksum, which
  /// covers the stored image — the compressed envelope when a codec is
  /// configured. May fail with kIOError (transient, page untouched —
  /// retry), with OutOfDisk when the re-encoded page no longer fits the
  /// compressed capacity (page untouched), or "succeed" while the
  /// injector drops or corrupts the stored image (discovered on the
  /// next Read).
  Status Write(PageId id, std::span<const uint8_t> data);

  /// Reads the full raw page into `out` (resized to page_size). Cold
  /// reads verify CRC32C and decode the envelope; hot-tier hits return
  /// the cached decompressed image directly. Fails with kIOError on a
  /// transient fault and kDataLoss on a lost page, checksum mismatch,
  /// or undecodable envelope.
  Status Read(PageId id, std::vector<uint8_t>* out);

  /// Releases a page back to the store (lost pages included — freeing
  /// reclaims the capacity even though the bytes are gone).
  Status Free(PageId id);

  /// True if `id` is currently allocated.
  bool Contains(PageId id) const { return pages_.count(id) > 0; }

  /// Test hook: flips one stored bit without updating the checksum,
  /// exactly what the bit-rot fault does. `bit` < stored_bytes(id) * 8.
  /// Also demotes the page from the hot tier so the next Read sees the
  /// damaged device image, as a real re-read would.
  Status CorruptBitForTesting(PageId id, size_t bit);

  /// Checkpoint support: the injector's RNG/counters are part of a
  /// resumable run's state (a restored run must keep failing the way
  /// the original would have).
  FaultInjector* mutable_injector() { return &injector_; }

 private:
  /// Builds the stored image for a raw (already padded) page.
  std::vector<uint8_t> EncodeStored(std::span<const uint8_t> raw,
                                    bool* fallback) const;
  void HotInsert(PageId id, std::vector<uint8_t> raw);
  void HotErase(PageId id);

  size_t page_size_;
  size_t capacity_bytes_;
  PageCodecKind codec_;
  size_t hot_tier_bytes_;
  PageId next_id_ = 0;
  size_t used_bytes_ = 0;
  std::unordered_map<PageId, Page> pages_;

  /// Hot tier: decompressed page images, most-recently-used first.
  struct HotEntry {
    std::list<PageId>::iterator lru_it;
    std::vector<uint8_t> raw;
  };
  std::list<PageId> lru_;
  std::unordered_map<PageId, HotEntry> hot_;
  size_t hot_bytes_ = 0;

  IoStats io_;
  FaultInjector injector_;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_STORE_H_
