// Simulated paged disk: page-granular read/write with capacity
// enforcement and I/O accounting. Stands in for the paper's "R bytes of
// disk space" used for outlier entries (Sec. 5.1.4); the behaviours that
// matter — outliers leaving the memory budget, re-absorption costing
// I/O, disk capacity running out — are preserved and measurable.
//
// The device is no longer assumed perfect: every page carries a CRC32C
// checksum verified on Read, and an optional seeded FaultInjector can
// make the store misbehave like a real disk — transient IOErrors,
// silently dropped writes (permanent page loss), and single-bit rot.
// Lost or corrupt pages surface as kDataLoss, which is not retryable;
// transient faults surface as kIOError, which is.
#ifndef BIRCH_PAGESTORE_PAGE_STORE_H_
#define BIRCH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pagestore/fault_injector.h"
#include "pagestore/page.h"
#include "util/status.h"

namespace birch {

/// Cumulative I/O counters for a PageStore.
struct IoStats {
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t pages_freed = 0;
  /// Reads that found a checksum mismatch (bit rot caught by CRC32C).
  uint64_t checksum_failures = 0;
  /// Reads of pages whose write was silently dropped.
  uint64_t lost_page_reads = 0;
  /// Injected transient failures surfaced to callers as kIOError.
  uint64_t transient_read_errors = 0;
  uint64_t transient_write_errors = 0;
};

/// An in-memory map of PageId -> Page posing as a disk. Capacity is
/// enforced in bytes; Allocate fails with OutOfDisk when full.
class PageStore {
 public:
  /// capacity_bytes == 0 means unlimited; page_size must be > 0.
  /// `faults` defaults to the fault-free device.
  PageStore(size_t page_size, size_t capacity_bytes = 0,
            const FaultOptions& faults = FaultOptions{});

  size_t page_size() const { return page_size_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t used_bytes() const { return pages_.size() * page_size_; }
  size_t num_pages() const { return pages_.size(); }
  const IoStats& io_stats() const { return io_; }
  const FaultStats& fault_stats() const { return injector_.stats(); }

  /// Allocates a zeroed page; fails with OutOfDisk at capacity.
  StatusOr<PageId> Allocate();

  /// Writes `data` (at most page_size bytes) into page `id` and
  /// refreshes its checksum. May fail with kIOError (transient, page
  /// untouched — retry) or "succeed" while the injector drops or
  /// corrupts the stored image (discovered on the next Read).
  Status Write(PageId id, std::span<const uint8_t> data);

  /// Reads the full page into `out` (resized to page_size) after
  /// verifying its CRC32C. Fails with kIOError on a transient fault and
  /// kDataLoss on a lost page or checksum mismatch.
  Status Read(PageId id, std::vector<uint8_t>* out);

  /// Releases a page back to the store (lost pages included — freeing
  /// reclaims the capacity even though the bytes are gone).
  Status Free(PageId id);

  /// True if `id` is currently allocated.
  bool Contains(PageId id) const { return pages_.count(id) > 0; }

  /// Test hook: flips one stored bit without updating the checksum,
  /// exactly what the bit-rot fault does. `bit` < page_size * 8.
  Status CorruptBitForTesting(PageId id, size_t bit);

  /// Checkpoint support: the injector's RNG/counters are part of a
  /// resumable run's state (a restored run must keep failing the way
  /// the original would have).
  FaultInjector* mutable_injector() { return &injector_; }

 private:
  size_t page_size_;
  size_t capacity_bytes_;
  PageId next_id_ = 0;
  std::unordered_map<PageId, Page> pages_;
  IoStats io_;
  FaultInjector injector_;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_STORE_H_
