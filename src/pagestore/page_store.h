// Simulated paged disk: page-granular read/write with capacity
// enforcement and I/O accounting. Stands in for the paper's "R bytes of
// disk space" used for outlier entries (Sec. 5.1.4); the behaviours that
// matter — outliers leaving the memory budget, re-absorption costing
// I/O, disk capacity running out — are preserved and measurable.
#ifndef BIRCH_PAGESTORE_PAGE_STORE_H_
#define BIRCH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pagestore/page.h"
#include "util/status.h"

namespace birch {

/// Cumulative I/O counters for a PageStore.
struct IoStats {
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t pages_freed = 0;
};

/// An in-memory map of PageId -> Page posing as a disk. Capacity is
/// enforced in bytes; Allocate fails with OutOfDisk when full.
class PageStore {
 public:
  /// capacity_bytes == 0 means unlimited; page_size must be > 0.
  PageStore(size_t page_size, size_t capacity_bytes = 0);

  size_t page_size() const { return page_size_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t used_bytes() const { return pages_.size() * page_size_; }
  size_t num_pages() const { return pages_.size(); }
  const IoStats& io_stats() const { return io_; }

  /// Allocates a zeroed page; fails with OutOfDisk at capacity.
  StatusOr<PageId> Allocate();

  /// Writes `data` (at most page_size bytes) into page `id`.
  Status Write(PageId id, std::span<const uint8_t> data);

  /// Reads the full page into `out` (resized to page_size).
  Status Read(PageId id, std::vector<uint8_t>* out);

  /// Releases a page back to the store.
  Status Free(PageId id);

  /// True if `id` is currently allocated.
  bool Contains(PageId id) const { return pages_.count(id) > 0; }

 private:
  size_t page_size_;
  size_t capacity_bytes_;
  PageId next_id_ = 0;
  std::unordered_map<PageId, Page> pages_;
  IoStats io_;
};

}  // namespace birch

#endif  // BIRCH_PAGESTORE_PAGE_STORE_H_
