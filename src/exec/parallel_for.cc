#include "exec/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace birch {
namespace exec {

namespace {

/// Completion latch for one ParallelFor call.
struct WaitGroup {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending;

  explicit WaitGroup(size_t n) : pending(n) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

size_t ParallelForNumChunks(const ThreadPool* pool, size_t n,
                            size_t min_per_chunk) {
  if (pool == nullptr || n == 0) return 1;
  size_t per = std::max<size_t>(1, min_per_chunk);
  size_t by_size = (n + per - 1) / per;
  return std::max<size_t>(1, std::min(static_cast<size_t>(pool->size()),
                                      by_size));
}

void ParallelFor(ThreadPool* pool, size_t n, const ChunkFn& fn,
                 size_t min_per_chunk) {
  const size_t nc = ParallelForNumChunks(pool, n, min_per_chunk);
  if (nc <= 1) {
    fn(0, n, 0);
    return;
  }
  auto chunk_begin = [n, nc](size_t c) { return c * n / nc; };
  WaitGroup wg(nc - 1);
  for (size_t c = 1; c < nc; ++c) {
    pool->Submit([&fn, &wg, chunk_begin, c] {
      fn(chunk_begin(c), chunk_begin(c + 1), c);
      wg.Done();
    });
  }
  fn(0, chunk_begin(1), 0);
  wg.Wait();
}

}  // namespace exec
}  // namespace birch
