// ParallelFor with deterministic static chunking: [0, n) is split into
// at most pool->size() contiguous chunks whose boundaries depend only
// on (n, chunk count) — never on thread timing — so a caller that keeps
// per-chunk partial state and folds it in chunk order gets bit-for-bit
// reproducible results for a fixed thread count. With a null pool (or a
// single chunk) the body runs inline on the calling thread as one chunk
// covering the whole range, which keeps the serial path's arithmetic
// and iteration order untouched.
#ifndef BIRCH_EXEC_PARALLEL_FOR_H_
#define BIRCH_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"

namespace birch {
namespace exec {

/// Chunk body: half-open index range plus the chunk's index (stable
/// across runs; use it to address per-chunk partial state).
using ChunkFn = std::function<void(size_t begin, size_t end, size_t chunk)>;

/// Number of chunks ParallelFor will use for a range of `n` elements:
/// min(pool size, ceil(n / min_per_chunk)), at least 1. Deterministic
/// in (pool size, n, min_per_chunk); call it to pre-size per-chunk
/// accumulators.
size_t ParallelForNumChunks(const ThreadPool* pool, size_t n,
                            size_t min_per_chunk = 1);

/// Runs `fn` over [0, n) split into ParallelForNumChunks() contiguous
/// chunks (chunk c covers [c*n/nc, (c+1)*n/nc)) and blocks until every
/// chunk finished. Chunk 0 runs on the calling thread. Must not be
/// called from inside a pool worker (see ThreadPool::Submit).
void ParallelFor(ThreadPool* pool, size_t n, const ChunkFn& fn,
                 size_t min_per_chunk = 1);

}  // namespace exec
}  // namespace birch

#endif  // BIRCH_EXEC_PARALLEL_FOR_H_
