// Fixed-size thread pool with a single shared FIFO task queue (plain
// mutex + condvar; deliberately work-stealing-free — BIRCH's parallel
// stages submit a handful of coarse, statically-chunked tasks, so a
// shared queue is contention-free in practice and keeps execution
// order deterministic to reason about). Zero dependencies beyond the
// standard library.
//
// Obs integration (no-ops when instrumentation is disabled):
//   exec/tasks     counter — tasks executed
//   exec/steal_ns  gauge   — cumulative nanoseconds tasks spent queued
//                            before a worker picked them up
//   exec/workers   gauge   — size of the most recently built pool
#ifndef BIRCH_EXEC_THREAD_POOL_H_
#define BIRCH_EXEC_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace birch {
namespace exec {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by any worker. Tasks must not throw
  /// and must not Submit()+wait recursively from a worker thread (the
  /// wait could starve: every worker may be blocked on the queue).
  void Submit(std::function<void()> task);

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace exec
}  // namespace birch

#endif  // BIRCH_EXEC_THREAD_POOL_H_
