// Bounded blocking channel for streaming hand-off between threads.
// Supports one or many producers and one or many consumers (the
// sharded Phase-1 reader uses it SPSC: one reader thread feeding one
// worker per shard). Push blocks while the channel is full — the
// bounded capacity is the backpressure that keeps a fast producer from
// buffering an unbounded slice of the stream — and Pop blocks while it
// is empty. Close() wakes everyone: pending items are still delivered,
// then Pop returns false; Push after Close returns false and drops the
// item.
#ifndef BIRCH_EXEC_CHANNEL_H_
#define BIRCH_EXEC_CHANNEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace birch {
namespace exec {

template <typename T>
class Channel {
 public:
  /// `capacity` is clamped to >= 1.
  explicit Channel(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until there is room (or the channel closes). Returns false
  /// iff the channel was closed; the value is then dropped.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the channel is closed and
  /// drained). Returns false iff closed with nothing left.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Idempotent. Already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace exec
}  // namespace birch

#endif  // BIRCH_EXEC_CHANNEL_H_
