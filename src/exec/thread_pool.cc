#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace birch {
namespace exec {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  OBS_GAUGE_SET("exec/workers", n);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    OBS_COUNTER_INC("exec/tasks");
    OBS_GAUGE_ADD("exec/steal_ns",
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - task.enqueued)
                      .count());
    task.fn();
  }
}

}  // namespace exec
}  // namespace birch
