#include "image/scene.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace birch {

const char* RegionName(Region r) {
  switch (r) {
    case Region::kSky: return "sky";
    case Region::kCloud: return "cloud";
    case Region::kSunlitLeaves: return "sunlit-leaves";
    case Region::kBranch: return "branch";
    case Region::kShadow: return "shadow";
  }
  return "?";
}

void RegionBrightness(Region r, double* nir, double* vis) {
  // Vegetation is bright in NIR and dark in VIS; sky the opposite;
  // clouds bright in both; branches and shadows are both dark with
  // heavily overlapping distributions (separable only at fine
  // granularity), matching the paper's account.
  switch (r) {
    case Region::kSky: *nir = 60.0; *vis = 185.0; return;
    case Region::kCloud: *nir = 140.0; *vis = 235.0; return;
    case Region::kSunlitLeaves: *nir = 205.0; *vis = 95.0; return;
    case Region::kBranch: *nir = 82.0; *vis = 56.0; return;
    case Region::kShadow: *nir = 70.0; *vis = 46.0; return;
  }
}

Scene GenerateScene(const SceneOptions& o) {
  Scene scene;
  scene.width = o.width;
  scene.height = o.height;
  scene.pixels = Dataset(2);
  scene.pixels.Reserve(static_cast<size_t>(o.width) *
                       static_cast<size_t>(o.height));
  scene.region.reserve(scene.pixels.size());

  Rng rng(o.seed);
  const int sky_rows = static_cast<int>(o.sky_fraction * o.height);

  // Cloud blobs: random ellipses inside the sky band.
  struct Blob {
    double cx, cy, rx, ry;
  };
  std::vector<Blob> clouds;
  for (int b = 0; b < o.cloud_blobs; ++b) {
    clouds.push_back({rng.Uniform(0, o.width),
                      rng.Uniform(0, std::max(1, sky_rows)),
                      rng.Uniform(o.width / 30.0, o.width / 8.0),
                      rng.Uniform(sky_rows / 10.0, sky_rows / 3.0)});
  }
  auto in_cloud = [&](int x, int y) {
    for (const Blob& c : clouds) {
      double dx = (x - c.cx) / c.rx;
      double dy = (y - c.cy) / c.ry;
      if (dx * dx + dy * dy <= 1.0) return true;
    }
    return false;
  };

  // Tree region: branch "skeleton" = a few slanted stripes; shadows =
  // low-frequency blotches; the rest is sunlit foliage.
  auto tree_region = [&](int x, int y) {
    // Branch stripes: periodic slanted bands a few pixels wide.
    double s = std::fmod(0.35 * x + 1.2 * y, 53.0);
    if (s < 4.0) return Region::kBranch;
    // Shadow blotches: smooth pseudo-noise via two sines.
    double v = std::sin(0.037 * x + 1.7) * std::sin(0.051 * y + 0.6) +
               std::sin(0.013 * x * 0.7 + 0.029 * y);
    if (v > 0.9) return Region::kShadow;
    return Region::kSunlitLeaves;
  };

  double px[2];
  for (int y = 0; y < o.height; ++y) {
    for (int x = 0; x < o.width; ++x) {
      Region r;
      if (y < sky_rows) {
        r = in_cloud(x, y) ? Region::kCloud : Region::kSky;
      } else {
        r = tree_region(x, y);
      }
      double nir, vis;
      RegionBrightness(r, &nir, &vis);
      if (r == Region::kSky && y < 0.35 * sky_rows) {
        // The paper's pass 1 found the sky itself bimodal ("very bright
        // part of sky" vs "ordinary part of sky"): model it as a bright
        // band near the horizon-opposite edge. Ground truth stays kSky.
        nir += 14.0;
        vis += 45.0;
      }
      px[0] = std::clamp(rng.Gaussian(nir, o.noise_sigma), 0.0, 255.0);
      px[1] = std::clamp(rng.Gaussian(vis, o.noise_sigma), 0.0, 255.0);
      scene.pixels.Append(px);
      scene.region.push_back(static_cast<int>(r));
    }
  }
  return scene;
}

}  // namespace birch
