// Synthetic stand-in for the paper's NIR/VIS image pair (Sec. 6.8).
// The originals — two co-registered 512x1024 images of trees against
// sky — are unavailable, so this generator synthesizes a scene with the
// same statistical structure: per-region bivariate brightness
// distributions in which sky, clouds and sunlit leaves separate
// cleanly, while tree branches and shadows overlap and only come apart
// at a finer clustering granularity (the reason the paper needs a
// second filtering pass).
#ifndef BIRCH_IMAGE_SCENE_H_
#define BIRCH_IMAGE_SCENE_H_

#include <cstdint>
#include <vector>

#include "birch/dataset.h"

namespace birch {

/// Ground-truth pixel categories (the paper's five).
enum class Region : int {
  kSky = 0,
  kCloud,
  kSunlitLeaves,
  kBranch,
  kShadow,
};

inline constexpr int kNumRegions = 5;

const char* RegionName(Region r);

struct SceneOptions {
  int width = 1024;
  int height = 512;
  /// Fraction of rows occupied by sky at the top.
  double sky_fraction = 0.35;
  /// Cloud blobs inside the sky band.
  int cloud_blobs = 8;
  /// Brightness noise (per band, per region).
  double noise_sigma = 9.0;
  uint64_t seed = 42;
};

/// A generated two-band image: pixel i has (NIR, VIS) brightness in
/// pixels.Row(i) and ground truth region[i]. Pixels are row-major.
struct Scene {
  int width = 0;
  int height = 0;
  Dataset pixels;
  std::vector<int> region;

  Scene() : pixels(2) {}

  size_t size() const { return pixels.size(); }
};

/// Generates the scene (deterministic for a given seed).
Scene GenerateScene(const SceneOptions& options);

/// Per-region mean (NIR, VIS) used by the generator — exposed so tests
/// and the filter can reason about expected separability.
void RegionBrightness(Region r, double* nir, double* vis);

}  // namespace birch

#endif  // BIRCH_IMAGE_SCENE_H_
