#include "image/filter.h"

#include <algorithm>

#include "util/timer.h"

namespace birch {

StatusOr<FilterResult> TwoPassFilter(const Scene& scene,
                                     const FilterOptions& options) {
  if (scene.size() == 0) return Status::InvalidArgument("empty scene");
  FilterResult result;
  Timer timer;

  // --- Pass 1: cluster every pixel's (NIR, VIS) tuple. ---
  BirchOptions o1;
  o1.dim = 2;
  o1.k = options.pass1_k;
  o1.resources.memory_bytes = options.memory_bytes;
  o1.resources.disk_bytes = options.memory_bytes / 5;
  o1.seed = options.seed;
  o1.refine.passes = 1;
  auto pass1_or = ClusterDataset(scene.pixels, o1);
  if (!pass1_or.ok()) return pass1_or.status();
  result.pass1 = std::move(pass1_or).ValueOrDie();
  result.seconds_pass1 = timer.Seconds();

  // --- Select the dark cluster(s): branches + shadows. ---
  for (size_t c = 0; c < result.pass1.centroids.size(); ++c) {
    const auto& ctr = result.pass1.centroids[c];
    double brightness = 0.5 * (ctr[0] + ctr[1]);
    if (brightness < options.dark_brightness_limit) {
      result.dark_clusters.push_back(static_cast<int>(c));
    }
  }

  Dataset dark_pixels(2);
  for (size_t i = 0; i < scene.size(); ++i) {
    int l = result.pass1.labels[i];
    if (l < 0) continue;
    if (std::find(result.dark_clusters.begin(), result.dark_clusters.end(),
                  l) != result.dark_clusters.end()) {
      result.pass2_rows.push_back(i);
      dark_pixels.Append(scene.pixels.Row(i));
    }
  }

  // --- Pass 2: recluster the dark part at finer granularity. ---
  timer.Restart();
  if (!dark_pixels.empty() &&
      dark_pixels.size() > static_cast<size_t>(options.pass2_k)) {
    BirchOptions o2 = o1;
    o2.k = options.pass2_k;
    o2.seed = options.seed + 1;
    auto pass2_or = ClusterDataset(dark_pixels, o2);
    if (!pass2_or.ok()) return pass2_or.status();
    result.pass2 = std::move(pass2_or).ValueOrDie();
  }
  result.seconds_pass2 = timer.Seconds();

  // --- Stitch final labels. ---
  result.final_labels = result.pass1.labels;
  for (size_t j = 0; j < result.pass2_rows.size(); ++j) {
    int l2 = j < result.pass2.labels.size() ? result.pass2.labels[j] : -1;
    result.final_labels[result.pass2_rows[j]] =
        l2 < 0 ? -1 : options.pass1_k + l2;
  }
  return result;
}

}  // namespace birch
