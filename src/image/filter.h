// The paper's two-pass image filtering procedure (Sec. 6.8):
//
//   Pass 1: BIRCH clusters all (NIR, VIS) pixel tuples into 5 clusters;
//   sky, clouds and sunlit leaves come out as distinct clusters while
//   tree branches and shadows land together in the darkest cluster(s).
//
//   Pass 2: the pixels of the dark cluster(s) are re-clustered alone —
//   the same memory now serves a much smaller input, so the threshold
//   is finer — pulling branches and shadows apart.
#ifndef BIRCH_IMAGE_FILTER_H_
#define BIRCH_IMAGE_FILTER_H_

#include <vector>

#include "birch/birch.h"
#include "image/scene.h"

namespace birch {

struct FilterOptions {
  int pass1_k = 5;
  int pass2_k = 2;
  size_t memory_bytes = 80 * 1024;
  /// Pass-2 input: clusters whose centroid mean brightness
  /// ((NIR+VIS)/2) falls below this are deemed "dark" (branches +
  /// shadows) and re-clustered.
  double dark_brightness_limit = 90.0;
  uint64_t seed = 42;
};

struct FilterResult {
  BirchResult pass1;
  /// Pass-1 cluster indices that were selected as dark.
  std::vector<int> dark_clusters;
  /// Row indices (into the scene) fed to pass 2.
  std::vector<size_t> pass2_rows;
  BirchResult pass2;
  /// Final per-pixel label: pass-1 cluster id for bright pixels,
  /// pass1_k + pass-2 cluster id for dark pixels, -1 for outliers.
  std::vector<int> final_labels;
  double seconds_pass1 = 0.0;
  double seconds_pass2 = 0.0;
};

/// Runs the two-pass filter over `scene`.
StatusOr<FilterResult> TwoPassFilter(const Scene& scene,
                                     const FilterOptions& options);

}  // namespace birch

#endif  // BIRCH_IMAGE_FILTER_H_
