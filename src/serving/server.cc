#include "serving/server.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace birch {
namespace serving {

namespace {

/// Per-thread scan scratch: queries on any number of snapshots reuse
/// it, so the hot path never allocates after the first query on a
/// thread.
kernel::Workspace* ThreadWorkspace() {
  thread_local kernel::Workspace ws;
  return &ws;
}

}  // namespace

Status BirchServer::Publish(std::shared_ptr<ServingSnapshot> snap) {
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "Publish(null snapshot): build one with ServingSnapshot::Build "
        "(or use BirchClusterer::PublishSnapshot) before publishing");
  }
  if (snap->dim() != dim_) {
    return Status::InvalidArgument(
        "snapshot dimension mismatch: snapshot has dim " +
        std::to_string(snap->dim()) + ", server was created with dim " +
        std::to_string(dim_) +
        "; publish snapshots built from the same clusterer");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->set_epoch(++next_epoch_);
    current_ = std::move(snap);  // previous epoch retires here
  }
  OBS_COUNTER_INC("serving/publishes");
  OBS_GAUGE_SET("serving/epoch", epoch());
  return Status::OK();
}

std::shared_ptr<const ServingSnapshot> BirchServer::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

StatusOr<AssignResult> BirchServer::Assign(
    std::span<const double> point) const {
  if (point.size() != dim_) {
    return Status::InvalidArgument(
        "query dimension mismatch: got " + std::to_string(point.size()) +
        " components, server expects dim " + std::to_string(dim_) +
        "; pass exactly dim coordinates per query point");
  }
  std::shared_ptr<const ServingSnapshot> snap = Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no snapshot published yet: enable serving.publish_every_n (or "
        "publish manually) and ingest at least one point");
  }
  Timer timer;
  AssignResult r = snap->Assign(point, ThreadWorkspace());
  OBS_HISTOGRAM_RECORD("serving/assign_us", timer.Seconds() * 1e6);
  OBS_COUNTER_INC("serving/assign_queries");
  return r;
}

StatusOr<std::vector<CentroidNeighbor>> BirchServer::KNearestCentroids(
    std::span<const double> point, size_t k) const {
  if (point.size() != dim_) {
    return Status::InvalidArgument(
        "query dimension mismatch: got " + std::to_string(point.size()) +
        " components, server expects dim " + std::to_string(dim_) +
        "; pass exactly dim coordinates per query point");
  }
  std::shared_ptr<const ServingSnapshot> snap = Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no snapshot published yet: enable serving.publish_every_n (or "
        "publish manually) and ingest at least one point");
  }
  Timer timer;
  std::vector<CentroidNeighbor> out = snap->KNearestCentroids(point, k);
  OBS_HISTOGRAM_RECORD("serving/knn_us", timer.Seconds() * 1e6);
  OBS_COUNTER_INC("serving/knn_queries");
  return out;
}

uint64_t BirchServer::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->epoch();
}

double BirchServer::SnapshotAgeMs() const {
  std::shared_ptr<const ServingSnapshot> snap = Acquire();
  return snap == nullptr ? 0.0 : snap->AgeMs();
}

uint64_t BirchServer::publishes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_epoch_;
}

}  // namespace serving
}  // namespace birch
