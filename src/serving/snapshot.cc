#include "serving/snapshot.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/math.h"
#include "util/timer.h"

namespace birch {
namespace serving {

ServingSnapshot::ServingSnapshot() {
  // Balanced by the decrement in the destructor: the gauge counts
  // snapshots alive right now, and must return to zero when every
  // epoch has retired (tests/serving_test.cc holds this line).
  OBS_GAUGE_ADD("serving/snapshots_live", 1);
}

ServingSnapshot::~ServingSnapshot() {
  OBS_GAUGE_ADD("serving/snapshots_live", -1);
}

size_t ServingSnapshot::Flatten(const CfNode& node) {
  const size_t index = nodes_.size();
  nodes_.emplace_back();
  {
    Node& n = nodes_.back();
    n.is_leaf = node.is_leaf;
    n.rows = node.entries.size();
    n.centers.reserve(n.rows * dim_);
  }
  std::vector<std::vector<double>> centers;
  centers.reserve(node.entries.size());
  for (const CfVector& e : node.entries) {
    centers.push_back(e.Centroid());
    // nodes_ may reallocate inside the recursive calls below, so touch
    // it only through the index.
    Node& n = nodes_[index];
    n.centers.insert(n.centers.end(), centers.back().begin(),
                     centers.back().end());
  }
  nodes_[index].batch.Assign(centers);
  if (node.is_leaf) {
    Node& n = nodes_[index];
    n.first_entry = leaf_radius_.size();
    for (const CfVector& e : node.entries) {
      leaf_radius_.push_back(e.Radius());
      leaf_n_.push_back(e.n());
      e.SerializeTo(&leaf_cfs_);
    }
  } else {
    nodes_[index].children.reserve(node.children.size());
    for (const CfNode* child : node.children) {
      const size_t c = Flatten(*child);
      nodes_[index].children.push_back(static_cast<uint32_t>(c));
    }
  }
  return index;
}

StatusOr<std::shared_ptr<ServingSnapshot>> ServingSnapshot::Build(
    const CfTree& tree, const SnapshotBuildOptions& options) {
  if (tree.leaf_entry_count() == 0) {
    return Status::FailedPrecondition(
        "no data to snapshot: the CF tree holds no leaf entries; ingest "
        "at least one point before building a serving snapshot");
  }
  Timer timer;
  std::shared_ptr<ServingSnapshot> snap(new ServingSnapshot());
  snap->dim_ = tree.options().dim;
  snap->threshold_ = tree.threshold();
  snap->kernel_ = options.kernel;
  snap->cf_rep_ = tree.options().cf;
  snap->cf_storage_ = tree.options().cf_storage;
  snap->points_ingested_ = options.points_ingested;
  snap->Flatten(*tree.root());

  // Publish-time cluster table over the leaf entries (descent order —
  // the order Flatten visited them, so entry_cluster_ lines up with
  // AssignResult::leaf_entry).
  std::vector<CfVector> entries = snap->LeafEntries();
  GlobalClusterOptions g;
  g.k = options.k > 0
            ? static_cast<int>(std::min<size_t>(
                  static_cast<size_t>(options.k), entries.size()))
            : 0;
  g.distance_limit = g.k > 0 ? 0.0 : options.distance_limit;
  g.metric = options.metric;
  g.seed = options.seed;
  g.kernel = options.kernel;
  // Large trees fall back to k-means (hierarchical cost is quadratic),
  // exactly like BirchClusterer::Snapshot(). With k == 0 (distance-
  // limited) there is no k-means form; the size guard then propagates.
  g.algorithm = (g.k > 0 && entries.size() > g.max_hierarchical_inputs)
                    ? GlobalAlgorithm::kKMeans
                    : options.algorithm;
  auto clustering_or = GlobalCluster(entries, g);
  if (!clustering_or.ok()) return clustering_or.status();
  GlobalClustering& clustering = clustering_or.value();
  snap->entry_cluster_ = std::move(clustering.assignment);
  snap->clusters_ = std::move(clustering.clusters);
  snap->cluster_centroids_.reserve(snap->clusters_.size());
  for (const CfVector& c : snap->clusters_) {
    snap->cluster_centroids_.push_back(c.Centroid());
  }
  snap->built_at_ = std::chrono::steady_clock::now();
  OBS_HISTOGRAM_RECORD("serving/publish_us", timer.Seconds() * 1e6);
  OBS_GAUGE_SET("serving/snapshot_bytes", snap->MemoryBytes());
  return snap;
}

size_t ServingSnapshot::NearestRow(const Node& node,
                                   std::span<const double> point,
                                   KernelKind kernel, kernel::Workspace* ws,
                                   double* best_sq) const {
  if (IsBatchKernel(kernel)) {
    kernel::ScanResult r = node.batch.NearestSq(point, ws);
    *best_sq = r.distance;
    return r.index == static_cast<size_t>(-1) ? 0 : r.index;
  }
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < node.rows; ++r) {
    const double d = SquaredDistance(
        point, std::span<const double>(node.centers.data() + r * dim_, dim_));
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  *best_sq = best_d;
  return best;
}

AssignResult ServingSnapshot::AssignWith(std::span<const double> point,
                                         KernelKind kernel,
                                         kernel::Workspace* ws) const {
  assert(point.size() == dim_);
  double best_sq = 0.0;
  const Node* node = &nodes_[0];
  while (!node->is_leaf) {
    const size_t row = NearestRow(*node, point, kernel, ws, &best_sq);
    node = &nodes_[node->children[row]];
  }
  const size_t row = NearestRow(*node, point, kernel, ws, &best_sq);
  const size_t entry = node->first_entry + row;
  AssignResult r;
  r.cluster_id = entry_cluster_[entry];
  r.leaf_entry = entry;
  r.distance = std::sqrt(best_sq);
  r.radius = leaf_radius_[entry];
  r.epoch = epoch_;
  return r;
}

AssignResult ServingSnapshot::Assign(std::span<const double> point,
                                     kernel::Workspace* ws) const {
  return AssignWith(point, kernel_, ws);
}

std::vector<CentroidNeighbor> ServingSnapshot::KNearestCentroids(
    std::span<const double> point, size_t k) const {
  assert(point.size() == dim_);
  const size_t m = cluster_centroids_.size();
  k = std::min(k, m);
  std::vector<std::pair<double, size_t>> dist(m);
  for (size_t c = 0; c < m; ++c) {
    dist[c] = {SquaredDistance(point, cluster_centroids_[c]), c};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<ptrdiff_t>(k),
                    dist.end());
  std::vector<CentroidNeighbor> out(k);
  for (size_t i = 0; i < k; ++i) {
    out[i].cluster_id = static_cast<int>(dist[i].second);
    out[i].distance = std::sqrt(dist[i].first);
  }
  return out;
}

std::vector<CfVector> ServingSnapshot::LeafEntries() const {
  const size_t stride = CfVector::SerializedDoubles(dim_);
  std::vector<CfVector> out;
  out.reserve(leaf_radius_.size());
  for (size_t i = 0; i < leaf_radius_.size(); ++i) {
    out.push_back(CfVector::Deserialize(
        std::span<const double>(leaf_cfs_.data() + i * stride, stride), dim_,
        cf_rep_, cf_storage_));
  }
  return out;
}

double ServingSnapshot::AgeMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - built_at_)
      .count();
}

size_t ServingSnapshot::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node) + n.children.capacity() * sizeof(uint32_t) +
             n.centers.capacity() * sizeof(double) +
             // The SoA mirror holds one dim-major copy of the centers.
             n.rows * dim_ * sizeof(double);
  }
  bytes += entry_cluster_.capacity() * sizeof(int) +
           (leaf_radius_.capacity() + leaf_n_.capacity() +
            leaf_cfs_.capacity()) *
               sizeof(double);
  for (const CfVector& c : clusters_) {
    bytes += sizeof(CfVector) + c.dim() * sizeof(double);
  }
  for (const auto& c : cluster_centroids_) {
    bytes += c.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace serving
}  // namespace birch
