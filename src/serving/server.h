// BirchServer: the serving-tier front. Ingest (serial or sharded
// Phase 1) publishes immutable ServingSnapshot epochs through it; any
// number of reader threads concurrently answer
//   Assign(point)              -> {cluster_id, distance, radius}
//   KNearestCentroids(point,k) -> k nearest publish-time centroids
// against the current epoch. Readers never block ingest and ingest
// never blocks readers: Publish swaps a shared_ptr under a mutex whose
// critical section is a pointer exchange; queries pin the epoch with
// one refcount bump and then run entirely on immutable state with a
// thread-local kernel workspace.
//
// Consistency model: a query sees exactly one epoch — the snapshot
// that was current when it pinned. Two queries on the same pinned
// epoch (Acquire() + ServingSnapshot::Assign) are bitwise-repeatable
// no matter how far ingest has moved on. Queries before the first
// Publish return FailedPrecondition.
//
// Observability: per-query latency histograms ("serving/assign_us",
// "serving/knn_us"), query counters, and the epoch / snapshot-age /
// live-snapshot gauges, all through the default obs registry (relaxed
// atomics; TSAN-clean against concurrent ingest).
#ifndef BIRCH_SERVING_SERVER_H_
#define BIRCH_SERVING_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "serving/snapshot.h"
#include "util/status.h"

namespace birch {
namespace serving {

class BirchServer {
 public:
  /// `dim` is the point dimensionality every query must carry.
  explicit BirchServer(size_t dim) : dim_(dim) {}

  BirchServer(const BirchServer&) = delete;
  BirchServer& operator=(const BirchServer&) = delete;

  /// Makes `snap` the current epoch (stamping it with the next epoch
  /// number) and retires the previous one — it stays alive until its
  /// last reader drains. InvalidArgument on a null or wrong-dimension
  /// snapshot.
  Status Publish(std::shared_ptr<ServingSnapshot> snap);

  /// Pins the current epoch (null before the first Publish). Hold the
  /// pointer to keep answering from a fixed epoch; drop it to let a
  /// retired snapshot free.
  std::shared_ptr<const ServingSnapshot> Acquire() const;

  /// Point -> nearest leaf entry of the current epoch (greedy
  /// centroid descent; see ServingSnapshot::Assign). Safe from many
  /// threads concurrently with Publish. FailedPrecondition before the
  /// first epoch; InvalidArgument on a dimension mismatch.
  StatusOr<AssignResult> Assign(std::span<const double> point) const;

  /// The `k` publish-time cluster centroids of the current epoch
  /// nearest to `point` (exact scan, ascending distance).
  StatusOr<std::vector<CentroidNeighbor>> KNearestCentroids(
      std::span<const double> point, size_t k) const;

  size_t dim() const { return dim_; }
  /// Epoch of the current snapshot; 0 before the first Publish.
  uint64_t epoch() const;
  /// Age of the current snapshot in milliseconds (0 before the first
  /// Publish). Sampler-probe fodder: safe from any thread.
  double SnapshotAgeMs() const;
  /// Total Publish() calls.
  uint64_t publishes() const;

 private:
  const size_t dim_;
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;  // guarded by mu_
  uint64_t next_epoch_ = 0;                         // guarded by mu_
};

}  // namespace serving
}  // namespace birch

#endif  // BIRCH_SERVING_SERVER_H_
