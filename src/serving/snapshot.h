// Immutable, read-optimized snapshot of a CF tree — the unit the
// serving tier publishes and queries (DESIGN.md §13).
//
// A ServingSnapshot is built once (from a quiesced CfTree) and never
// mutated afterwards: the tree structure is flattened into contiguous
// node records, each carrying its entry centroids both row-major (the
// scalar oracle path) and as a kernel::CenterBatch SoA block (the
// batch path), so point->cluster descent is a cache-friendly argmin
// per level with zero pointer chasing into live tree pages. Leaf
// entries additionally keep their exact serialized CFs, which lets a
// mid-stream Snapshot(k) re-cluster the published state at any k
// without touching the live tree.
//
// Sharing model: snapshots travel as std::shared_ptr<const
// ServingSnapshot> "epochs". Readers pin an epoch with one refcount
// bump and query it lock-free for as long as they like; ingest keeps
// publishing newer epochs underneath. When the last reader of a
// retired epoch drains, the snapshot frees and the
// "serving/snapshots_live" gauge returns to balance.
#ifndef BIRCH_SERVING_SNAPSHOT_H_
#define BIRCH_SERVING_SNAPSHOT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "birch/cf_tree.h"
#include "birch/cf_vector.h"
#include "birch/global_cluster.h"
#include "birch/kernel/kernel.h"
#include "util/status.h"

namespace birch {
namespace serving {

/// Answer to Assign(point): the leaf entry the descent lands on, the
/// publish-time global cluster that entry belongs to, the Euclidean
/// distance from the point to the entry centroid, and the entry's
/// radius (how tight the match is).
struct AssignResult {
  int cluster_id = -1;
  size_t leaf_entry = 0;  // snapshot-global leaf entry index
  double distance = 0.0;
  double radius = 0.0;
  uint64_t epoch = 0;
};

/// One k-nearest-centroids hit: a publish-time global cluster and the
/// Euclidean distance from the query point to its centroid.
struct CentroidNeighbor {
  int cluster_id = -1;
  double distance = 0.0;
};

/// What ServingSnapshot::Build needs beyond the tree itself: the
/// global-clustering configuration for the publish-time cluster table
/// (the same knobs BirchClusterer::Snapshot(k) uses).
struct SnapshotBuildOptions {
  /// Cluster count for the publish-time table (clamped to the leaf
  /// entry count). 0 with distance_limit > 0 merges hierarchically to
  /// the limit instead.
  int k = 0;
  double distance_limit = 0.0;
  GlobalAlgorithm algorithm = GlobalAlgorithm::kHierarchical;
  DistanceMetric metric = DistanceMetric::kD2;
  uint64_t seed = 42;
  /// Distance-scan implementation for descent (kScalar and kBatch are
  /// bitwise identical; see kernel/kernel.h).
  KernelKind kernel = KernelKind::kBatch;
  /// Stream position at capture time (metadata only).
  uint64_t points_ingested = 0;
};

/// The immutable snapshot. Thread-safe for concurrent const queries:
/// all state is written once in Build() and only read afterwards
/// (callers supply a per-thread kernel::Workspace).
class ServingSnapshot {
 public:
  /// Flattens `tree` and runs the publish-time global clustering.
  /// FailedPrecondition when the tree holds no leaf entries; any
  /// global-clustering failure propagates. The returned snapshot is
  /// mutable only in the hands of the publisher (BirchServer stamps
  /// the epoch); readers always see it through a const pointer.
  static StatusOr<std::shared_ptr<ServingSnapshot>> Build(
      const CfTree& tree, const SnapshotBuildOptions& options);

  ~ServingSnapshot();

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  /// Greedy CF-tree descent (the paper's insertion walk, read-only):
  /// at each level pick the child whose entry centroid is nearest in
  /// squared Euclidean distance, then argmin over the landing leaf's
  /// entry centroids. Deterministic: first-wins ties, strict `<`, and
  /// the kScalar / kBatch paths agree bitwise. `ws` is the caller's
  /// scratch (one per thread).
  AssignResult Assign(std::span<const double> point,
                      kernel::Workspace* ws) const;
  /// Assign with this snapshot's build-time kernel choice overridden.
  AssignResult AssignWith(std::span<const double> point, KernelKind kernel,
                          kernel::Workspace* ws) const;

  /// The `k` publish-time cluster centroids nearest to `point`
  /// (exact flat scan, ascending distance, ties by cluster id).
  /// `k` is clamped to the table size.
  std::vector<CentroidNeighbor> KNearestCentroids(
      std::span<const double> point, size_t k) const;

  /// Exact CFs of every leaf entry at capture time (deserialized
  /// copies, index-aligned with AssignResult::leaf_entry). This is
  /// what a mid-stream Snapshot(k) re-clusters.
  std::vector<CfVector> LeafEntries() const;

  // --- Publish-time cluster table ---
  const std::vector<CfVector>& clusters() const { return clusters_; }
  const std::vector<std::vector<double>>& cluster_centroids() const {
    return cluster_centroids_;
  }
  /// Publish-time cluster of leaf entry `i`.
  int cluster_of(size_t i) const { return entry_cluster_[i]; }

  // --- Metadata ---
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t e) { epoch_ = e; }
  uint64_t points_ingested() const { return points_ingested_; }
  size_t dim() const { return dim_; }
  size_t leaf_entry_count() const { return leaf_radius_.size(); }
  size_t node_count() const { return nodes_.size(); }
  double threshold() const { return threshold_; }
  KernelKind kernel() const { return kernel_; }
  CfRepresentation cf_rep() const { return cf_rep_; }
  CfStorage cf_storage() const { return cf_storage_; }
  /// Milliseconds since this snapshot was built (monotonic clock).
  double AgeMs() const;
  /// Heap bytes of the flattened structure (gauge fodder).
  size_t MemoryBytes() const;

 private:
  ServingSnapshot();

  /// One flattened tree node: entry centroids row-major (the scalar
  /// path) plus the SoA mirror (the batch path). Non-leaf:
  /// children[i] is the node index under centroid row i. Leaf:
  /// first_entry indexes the snapshot-global leaf arrays.
  struct Node {
    bool is_leaf = false;
    size_t rows = 0;                 // entry count
    size_t first_entry = 0;          // leaf only
    std::vector<uint32_t> children;  // non-leaf only, parallel to rows
    std::vector<double> centers;     // row-major, rows * dim
    kernel::CenterBatch batch;
  };

  size_t Flatten(const CfNode& node);
  /// Argmin over `node`'s entry centroids under the chosen kernel.
  /// First-wins ties; fills *best_sq with the winning squared distance.
  size_t NearestRow(const Node& node, std::span<const double> point,
                    KernelKind kernel, kernel::Workspace* ws,
                    double* best_sq) const;

  uint64_t epoch_ = 0;
  uint64_t points_ingested_ = 0;
  size_t dim_ = 0;
  double threshold_ = 0.0;
  KernelKind kernel_ = KernelKind::kBatch;
  CfRepresentation cf_rep_ = CfRepresentation::kClassic;
  CfStorage cf_storage_ = CfStorage::kF64;
  std::chrono::steady_clock::time_point built_at_;

  std::vector<Node> nodes_;  // nodes_[0] is the root

  // Snapshot-global per-leaf-entry arrays (descent order).
  std::vector<int> entry_cluster_;
  std::vector<double> leaf_radius_;
  std::vector<double> leaf_n_;
  /// Exact serialized CFs, (dim+2) doubles per entry.
  std::vector<double> leaf_cfs_;

  // Publish-time global clustering of the leaf entries.
  std::vector<CfVector> clusters_;
  std::vector<std::vector<double>> cluster_centroids_;
};

}  // namespace serving
}  // namespace birch

#endif  // BIRCH_SERVING_SNAPSHOT_H_
